package scanner

import (
	"io/fs"
	"path"
	"sort"
	"strings"

	"repro/internal/psl"
	"repro/internal/repos"
)

// Finding describes one embedded public-suffix-list copy discovered in
// a project tree.
type Finding struct {
	// Path of the file within the scanned tree.
	Path string
	// Rules is the number of rules parsed from the file.
	Rules int
	// Fingerprint is the SHA-256 rule-set fingerprint (psl.List).
	Fingerprint string
	// ID is the match against the version history.
	ID Identification
}

// Report is the result of scanning one project tree.
type Report struct {
	// Root is a label for the scanned tree.
	Root string
	// Findings lists embedded list copies, oldest first.
	Findings []Finding
	// Strategy and Sub are the inferred update strategy per the
	// paper's Table 1 taxonomy.
	Strategy repos.Strategy
	Sub      repos.SubCategory
	// Evidence records which heuristics fired, for human review.
	Evidence []string
}

// OldestAgeDays returns the age of the oldest embedded copy, or -1 when
// nothing was found.
func (r *Report) OldestAgeDays() int {
	if len(r.Findings) == 0 {
		return -1
	}
	return r.Findings[0].ID.AgeDays
}

// listFileNames are the canonical file names of the public suffix list
// (current and historical).
var listFileNames = map[string]bool{
	"public_suffix_list.dat":  true,
	"effective_tld_names.dat": true,
	"publicsuffix.dat":        true,
	"psl.dat":                 true,
}

// dataExtensions are considered for content sniffing.
var dataExtensions = map[string]bool{".dat": true, ".txt": true, ".list": true}

// maxSniffSize bounds how much of a candidate file is read.
const maxSniffSize = 8 << 20

// LooksLikeList reports whether file content resembles a public suffix
// list: it either carries the canonical section marker or parses with a
// high rule density.
func LooksLikeList(content []byte) bool {
	s := string(content)
	if strings.Contains(s, "===BEGIN ICANN DOMAINS===") {
		return true
	}
	lines := strings.Split(s, "\n")
	rules, considered := 0, 0
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "#") {
			continue
		}
		considered++
		if _, err := psl.ParseRule(line, psl.SectionUnknown); err == nil {
			rules++
		}
		if considered >= 400 {
			break
		}
	}
	return rules >= 50 && float64(rules) >= 0.9*float64(considered)
}

// Scan walks the tree, locating embedded lists and classifying the
// project's update strategy.
func Scan(fsys fs.FS, root string, ix *VersionIndex) (*Report, error) {
	rep := &Report{Root: root, Strategy: repos.StrategyFixed, Sub: repos.SubProduction}
	var fetchInBuild, fetchInSource, daemonHints, testOnly bool
	var depLibrary string
	sawList := false

	err := fs.WalkDir(fsys, ".", func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals.
			if d.Name() == ".git" {
				return fs.SkipDir
			}
			return nil
		}
		name := d.Name()
		ext := path.Ext(name)

		// Candidate list files. A candidate that turns out not to be a
		// list falls through to the source/manifest heuristics below
		// (requirements.txt is a .txt file, for example).
		if listFileNames[name] || dataExtensions[ext] {
			content, err := readCapped(fsys, p)
			if err != nil {
				return err
			}
			if listFileNames[name] || LooksLikeList(content) {
				if l, perr := psl.ParseString(string(content)); perr == nil && l.Len() > 0 {
					f := Finding{
						Path:        p,
						Rules:       l.Len(),
						Fingerprint: l.Fingerprint(),
					}
					if ix != nil {
						f.ID = ix.Identify(l)
					}
					rep.Findings = append(rep.Findings, f)
					sawList = true
					if strings.Contains(p, "vendor/") || strings.Contains(p, "gems/") ||
						strings.Contains(p, "node_modules/") || strings.Contains(p, "jre/") {
						depLibrary = "vendored"
					}
					if strings.Contains(p, "test") || strings.Contains(p, "fixtures") {
						testOnly = true
					}
					return nil
				}
			}
		}

		// Heuristic source inspection.
		switch {
		case isBuildFile(name):
			content, err := readCapped(fsys, p)
			if err != nil {
				return err
			}
			if mentionsPSLFetch(string(content)) {
				fetchInBuild = true
				rep.Evidence = append(rep.Evidence, "fetch in build file: "+p)
			}
		case isSourceFile(ext):
			content, err := readCapped(fsys, p)
			if err != nil {
				return err
			}
			s := string(content)
			if mentionsPSLFetch(s) {
				fetchInSource = true
				rep.Evidence = append(rep.Evidence, "fetch in source: "+p)
				if strings.Contains(s, "daemon") || strings.Contains(s, "serve_forever") ||
					strings.Contains(s, "ListenAndServe") {
					daemonHints = true
				}
			}
			if lib := dependencyLibraryIn(s); lib != "" && depLibrary == "" {
				depLibrary = lib
				rep.Evidence = append(rep.Evidence, "dependency manifest: "+p+" ("+lib+")")
			}
		case name == "requirements.txt" || name == "Gemfile" || name == "go.mod" || name == "pom.xml":
			content, err := readCapped(fsys, p)
			if err != nil {
				return err
			}
			if lib := dependencyLibraryIn(string(content)); lib != "" {
				depLibrary = lib
				rep.Evidence = append(rep.Evidence, "dependency manifest: "+p+" ("+lib+")")
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Classification, mirroring Table 1's taxonomy.
	switch {
	case depLibrary != "" && !fetchInBuild && !fetchInSource:
		rep.Strategy, rep.Sub = repos.StrategyDependency, repos.SubLibrary
	case fetchInBuild:
		rep.Strategy, rep.Sub = repos.StrategyUpdated, repos.SubBuild
	case fetchInSource && daemonHints:
		rep.Strategy, rep.Sub = repos.StrategyUpdated, repos.SubServer
	case fetchInSource:
		rep.Strategy, rep.Sub = repos.StrategyUpdated, repos.SubUser
	case sawList && testOnly:
		rep.Strategy, rep.Sub = repos.StrategyFixed, repos.SubTest
	default:
		rep.Strategy, rep.Sub = repos.StrategyFixed, repos.SubProduction
	}

	sort.Slice(rep.Findings, func(i, j int) bool {
		return rep.Findings[i].ID.AgeDays > rep.Findings[j].ID.AgeDays
	})
	return rep, nil
}

// readCapped reads a file, bounding the size.
func readCapped(fsys fs.FS, p string) ([]byte, error) {
	b, err := fs.ReadFile(fsys, p)
	if err != nil {
		return nil, err
	}
	if len(b) > maxSniffSize {
		b = b[:maxSniffSize]
	}
	return b, nil
}

// isBuildFile recognises build-system entry points.
func isBuildFile(name string) bool {
	switch name {
	case "Makefile", "makefile", "GNUmakefile", "build.gradle", "build.sh",
		"CMakeLists.txt", "Rakefile", "justfile":
		return true
	}
	return false
}

// isSourceFile recognises source code by extension.
func isSourceFile(ext string) bool {
	switch ext {
	case ".go", ".py", ".rb", ".js", ".ts", ".java", ".rs", ".c", ".cc", ".cpp", ".php", ".sh":
		return true
	}
	return false
}

// mentionsPSLFetch reports whether content fetches the public suffix
// list over the network.
func mentionsPSLFetch(content string) bool {
	if !strings.Contains(content, "publicsuffix.org") &&
		!strings.Contains(content, "public_suffix_list.dat") {
		return false
	}
	for _, kw := range []string{"curl", "wget", "http.Get", "urlopen", "requests.get",
		"fetch(", "HttpClient", "URLConnection", "urllib", "https://"} {
		if strings.Contains(content, kw) {
			return true
		}
	}
	return false
}

// dependencyLibraryIn spots well-known PSL-consuming libraries in a
// dependency manifest or source file.
func dependencyLibraryIn(content string) string {
	for _, lib := range []string{
		"publicsuffix2", "publicsuffixlist", "oneforall", "python-whois",
		"domain_name", "ddns-scripts", "psl-", "github.com/weppos/publicsuffix-go",
		"golang.org/x/net/publicsuffix",
	} {
		if strings.Contains(content, lib) {
			return lib
		}
	}
	return ""
}
