// Package crawler is a small concurrent web crawler that collects the
// raw material of the paper's methodology: unique hostnames and
// aggregated page-host → request-host pairs. Pointed at the synthetic
// web of package webworld it re-collects (a subset of) the HTTP Archive
// snapshot over real HTTP; pointed at anything else it produces the
// same structures for the analysis pipeline.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/domain"
)

// Config parameterises a crawl.
type Config struct {
	// Seeds are the starting page URLs.
	Seeds []string
	// MaxPages bounds how many pages are fetched. Default 100.
	MaxPages int
	// Concurrency is the number of fetch workers. Default 4.
	Concurrency int
	// Client performs the requests; tests supply one whose transport
	// dials every host to a local server. Default http.DefaultClient.
	Client *http.Client
	// FetchSubresources controls whether script/img URLs are fetched
	// (they are always *recorded*); fetching exercises the servers but
	// costs requests. Default false.
	FetchSubresources bool
}

func (c Config) withDefaults() Config {
	if c.MaxPages == 0 {
		c.MaxPages = 100
	}
	if c.Concurrency == 0 {
		c.Concurrency = 4
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	return c
}

// Pair is an aggregated page→request edge, by hostname.
type Pair struct {
	PageHost, ReqHost string
	Count             int
}

// Result is the crawl output.
type Result struct {
	// Hosts are the unique hostnames observed (pages and resources),
	// sorted.
	Hosts []string
	// Pairs are the aggregated request edges, sorted.
	Pairs []Pair
	// Pages is the number of pages fetched.
	Pages int
	// Errors counts failed fetches (the crawl continues past them).
	Errors int
}

// ErrNoSeeds reports an empty seed list.
var ErrNoSeeds = errors.New("crawler: no seeds")

// Crawl walks the page graph breadth-first from the seeds, recording
// subresource requests and following links until MaxPages is reached
// or the frontier empties.
func Crawl(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Seeds) == 0 {
		return nil, ErrNoSeeds
	}

	var (
		mu       sync.Mutex
		visited  = make(map[string]bool)
		hosts    = make(map[string]bool)
		pairs    = make(map[[2]string]int)
		frontier = make([]string, 0, len(cfg.Seeds))
		inFlight int
		pages    int
		errs     int
	)
	for _, s := range cfg.Seeds {
		frontier = append(frontier, s)
	}

	cond := sync.NewCond(&mu)
	done := func() bool {
		return (len(frontier) == 0 && inFlight == 0) || pages >= cfg.MaxPages || ctx.Err() != nil
	}

	worker := func() {
		for {
			mu.Lock()
			for len(frontier) == 0 && inFlight > 0 && pages < cfg.MaxPages && ctx.Err() == nil {
				cond.Wait()
			}
			if done() {
				mu.Unlock()
				cond.Broadcast()
				return
			}
			url := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			pageHost := domain.Host(url)
			if visited[pageHost] {
				mu.Unlock()
				continue
			}
			visited[pageHost] = true
			pages++
			inFlight++
			mu.Unlock()

			page, err := fetchPage(ctx, cfg.Client, url)

			mu.Lock()
			inFlight--
			if err != nil {
				errs++
			} else {
				hosts[pageHost] = true
				for _, res := range page.resources {
					h := domain.Host(res)
					if h == "" {
						continue
					}
					hosts[h] = true
					if h != pageHost {
						pairs[[2]string{pageHost, h}]++
					} else {
						pairs[[2]string{pageHost, h}] += 0 // self requests are dropped
					}
				}
				for _, link := range page.links {
					h := domain.Host(link)
					if h != "" && !visited[h] {
						frontier = append(frontier, link)
					}
				}
			}
			cond.Broadcast()
			mu.Unlock()

			if err == nil && cfg.FetchSubresources {
				for _, res := range page.resources {
					fetchBody(ctx, cfg.Client, res)
				}
			}
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); worker() }()
	}
	wg.Wait()

	res := &Result{Pages: pages, Errors: errs}
	for h := range hosts {
		res.Hosts = append(res.Hosts, h)
	}
	sort.Strings(res.Hosts)
	for k, n := range pairs {
		if n == 0 {
			continue
		}
		res.Pairs = append(res.Pairs, Pair{PageHost: k[0], ReqHost: k[1], Count: n})
	}
	sort.Slice(res.Pairs, func(i, j int) bool {
		if res.Pairs[i].PageHost != res.Pairs[j].PageHost {
			return res.Pairs[i].PageHost < res.Pairs[j].PageHost
		}
		return res.Pairs[i].ReqHost < res.Pairs[j].ReqHost
	})
	return res, ctx.Err()
}

// pageContent is the parsed form of one fetched page.
type pageContent struct {
	resources []string // src= URLs (subresource requests)
	links     []string // href= URLs (navigation)
}

// fetchPage GETs a page and extracts its resource and link URLs.
func fetchPage(ctx context.Context, client *http.Client, url string) (*pageContent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil, fmt.Errorf("crawler: %s returned %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	page := &pageContent{}
	page.resources = extractAttr(string(body), `src="`)
	page.links = extractAttr(string(body), `href="`)
	return page, nil
}

// fetchBody GETs a subresource and discards it.
func fetchBody(ctx context.Context, client *http.Client, url string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// extractAttr scans HTML for attribute values introduced by the given
// prefix (e.g. `src="`). A hand-rolled scanner keeps the repository
// stdlib-only; it handles the well-formed HTML the synthetic web emits
// and degrades gracefully elsewhere.
func extractAttr(html, prefix string) []string {
	var out []string
	for i := 0; ; {
		j := strings.Index(html[i:], prefix)
		if j < 0 {
			break
		}
		start := i + j + len(prefix)
		end := strings.IndexByte(html[start:], '"')
		if end < 0 {
			break
		}
		v := html[start : start+end]
		if strings.HasPrefix(v, "http://") || strings.HasPrefix(v, "https://") {
			out = append(out, v)
		}
		i = start + end + 1
	}
	return out
}
