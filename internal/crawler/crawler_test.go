package crawler

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/httparchive"
	"repro/internal/webworld"
)

// testWorld serves a small synthetic web and returns a client whose
// transport dials every hostname to the test server.
func testWorld(t testing.TB) (*webworld.World, *http.Client, *httparchive.Snapshot) {
	t.Helper()
	h := history.Generate(history.Config{Seed: history.DefaultSeed})
	snap := httparchive.Generate(httparchive.Config{Seed: 1, Scale: 0.002}, h)
	world := webworld.New(snap)
	ts := httptest.NewServer(world)
	t.Cleanup(ts.Close)

	addr := strings.TrimPrefix(ts.URL, "http://")
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, network, addr)
			},
		},
	}
	return world, client, snap
}

func TestCrawlCollectsPairs(t *testing.T) {
	world, client, snap := testWorld(t)
	pages := world.PageHosts()
	if len(pages) == 0 {
		t.Fatal("world has no pages")
	}
	res, err := Crawl(context.Background(), Config{
		Seeds:       []string{"http://" + pages[0] + "/"},
		MaxPages:    25,
		Concurrency: 4,
		Client:      client,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages == 0 || len(res.Hosts) == 0 || len(res.Pairs) == 0 {
		t.Fatalf("empty crawl: %+v", res)
	}
	if res.Errors != 0 {
		t.Errorf("crawl errors: %d", res.Errors)
	}

	// Every collected pair must exist in the snapshot with the exact
	// request count (the world renders one tag per request).
	snapPairs := make(map[[2]string]int, len(snap.Pairs))
	for _, p := range snap.Pairs {
		snapPairs[[2]string{snap.Hosts[p.Page], snap.Hosts[p.Req]}] = int(p.Count)
	}
	for _, p := range res.Pairs {
		want, ok := snapPairs[[2]string{p.PageHost, p.ReqHost}]
		if !ok {
			t.Errorf("crawled pair %s -> %s not in snapshot", p.PageHost, p.ReqHost)
			continue
		}
		if p.Count != want {
			t.Errorf("pair %s -> %s count %d, snapshot says %d", p.PageHost, p.ReqHost, p.Count, want)
		}
	}
}

func TestCrawlRespectsMaxPages(t *testing.T) {
	world, client, _ := testWorld(t)
	res, err := Crawl(context.Background(), Config{
		Seeds:    []string{"http://" + world.PageHosts()[0] + "/"},
		MaxPages: 3,
		Client:   client,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages > 3 {
		t.Errorf("fetched %d pages, cap was 3", res.Pages)
	}
}

func TestCrawlFollowsNavigation(t *testing.T) {
	world, client, _ := testWorld(t)
	res, err := Crawl(context.Background(), Config{
		Seeds:    []string{"http://" + world.PageHosts()[0] + "/"},
		MaxPages: 10,
		Client:   client,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages < 4 {
		t.Errorf("crawl did not follow links: %d pages", res.Pages)
	}
}

func TestCrawlDeterministicAggregation(t *testing.T) {
	world, client, _ := testWorld(t)
	cfg := Config{
		Seeds:       []string{"http://" + world.PageHosts()[0] + "/"},
		MaxPages:    8,
		Concurrency: 1, // single worker => deterministic traversal
		Client:      client,
	}
	a, err := Crawl(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Crawl(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) || len(a.Hosts) != len(b.Hosts) {
		t.Errorf("single-worker crawls differ: %d/%d vs %d/%d",
			len(a.Pairs), len(a.Hosts), len(b.Pairs), len(b.Hosts))
	}
}

func TestCrawlErrorsSurvivable(t *testing.T) {
	_, client, _ := testWorld(t)
	res, err := Crawl(context.Background(), Config{
		Seeds:    []string{"http://never-a-page.example/"},
		MaxPages: 2,
		Client:   client,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The world 404s unknown hosts; the crawl records the error and
	// completes.
	if res.Errors != 1 || res.Pages != 1 {
		t.Errorf("result = %+v, want 1 page with 1 error", res)
	}
}

func TestCrawlNoSeeds(t *testing.T) {
	if _, err := Crawl(context.Background(), Config{}); err != ErrNoSeeds {
		t.Errorf("err = %v, want ErrNoSeeds", err)
	}
}

func TestCrawlContextCancel(t *testing.T) {
	world, client, _ := testWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Crawl(ctx, Config{
		Seeds:  []string{"http://" + world.PageHosts()[0] + "/"},
		Client: client,
	})
	if err == nil && res.Pages > 1 {
		t.Error("cancelled crawl kept going")
	}
}

func TestExtractAttr(t *testing.T) {
	html := `<script src="http://a.example/x.js"></script>
<img src="relative/img.png">
<a href="http://b.example/">b</a>
<a href="#anchor">x</a>`
	srcs := extractAttr(html, `src="`)
	if len(srcs) != 1 || srcs[0] != "http://a.example/x.js" {
		t.Errorf("srcs = %v", srcs)
	}
	hrefs := extractAttr(html, `href="`)
	if len(hrefs) != 1 || hrefs[0] != "http://b.example/" {
		t.Errorf("hrefs = %v", hrefs)
	}
	if got := extractAttr(`src="unterminated`, `src="`); got != nil {
		t.Errorf("unterminated = %v", got)
	}
}
