// Package iana embeds a snapshot of the IANA Root Zone Database and
// categorises top-level domains the way the paper's Section 3 does:
// generic, country-code, sponsored, and infrastructure TLDs. Suffix
// entries that are not TLDs are classified as private domains.
//
// The paper consumed https://www.iana.org/domains/root/db; this package
// embeds the equivalent categorisation table (the database changes
// rarely, and only the category of each TLD matters downstream).
package iana

import (
	"strings"

	"repro/internal/domain"
	"repro/internal/psl"
)

// Category is the IANA delegation category of a TLD, extended with
// Private for non-TLD suffix entries (the paper's two-way split of
// suffix entries into top-level vs private domains).
type Category uint8

const (
	// CategoryUnknown marks TLDs absent from the database snapshot.
	CategoryUnknown Category = iota
	// CategoryGeneric covers gTLDs: com, net, org, and new gTLDs.
	CategoryGeneric
	// CategoryCountryCode covers ccTLDs: uk, de, jp, …
	CategoryCountryCode
	// CategorySponsored covers sTLDs: edu, gov, aero, museum, …
	CategorySponsored
	// CategoryInfrastructure covers arpa.
	CategoryInfrastructure
	// CategoryPrivate marks suffix entries below a TLD (private
	// domains such as github.io rules, or ccTLD second-level rules).
	CategoryPrivate
)

// String returns the IANA-style label for the category.
func (c Category) String() string {
	switch c {
	case CategoryGeneric:
		return "generic"
	case CategoryCountryCode:
		return "country-code"
	case CategorySponsored:
		return "sponsored"
	case CategoryInfrastructure:
		return "infrastructure"
	case CategoryPrivate:
		return "private"
	default:
		return "unknown"
	}
}

// ccTLDs is the ISO 3166-1 alpha-2 derived country-code TLD set
// (including IDN ccTLD examples in punycode form).
var ccTLDs = []string{
	"ac", "ad", "ae", "af", "ag", "ai", "al", "am", "ao", "aq", "ar",
	"as", "at", "au", "aw", "ax", "az", "ba", "bb", "bd", "be", "bf",
	"bg", "bh", "bi", "bj", "bm", "bn", "bo", "br", "bs", "bt", "bw",
	"by", "bz", "ca", "cc", "cd", "cf", "cg", "ch", "ci", "ck", "cl",
	"cm", "cn", "co", "cr", "cu", "cv", "cw", "cx", "cy", "cz", "de",
	"dj", "dk", "dm", "do", "dz", "ec", "ee", "eg", "er", "es", "et",
	"eu", "fi", "fj", "fk", "fm", "fo", "fr", "ga", "gd", "ge", "gf",
	"gg", "gh", "gi", "gl", "gm", "gn", "gp", "gq", "gr", "gs", "gt",
	"gu", "gw", "gy", "hk", "hm", "hn", "hr", "ht", "hu", "id", "ie",
	"il", "im", "in", "io", "iq", "ir", "is", "it", "je", "jm", "jo",
	"jp", "ke", "kg", "kh", "ki", "km", "kn", "kp", "kr", "kw", "ky",
	"kz", "la", "lb", "lc", "li", "lk", "lr", "ls", "lt", "lu", "lv",
	"ly", "ma", "mc", "md", "me", "mg", "mh", "mk", "ml", "mm", "mn",
	"mo", "mp", "mq", "mr", "ms", "mt", "mu", "mv", "mw", "mx", "my",
	"mz", "na", "nc", "ne", "nf", "ng", "ni", "nl", "no", "np", "nr",
	"nu", "nz", "om", "pa", "pe", "pf", "pg", "ph", "pk", "pl", "pm",
	"pn", "pr", "ps", "pt", "pw", "py", "qa", "re", "ro", "rs", "ru",
	"rw", "sa", "sb", "sc", "sd", "se", "sg", "sh", "si", "sk", "sl",
	"sm", "sn", "so", "sr", "ss", "st", "sv", "sx", "sy", "sz", "tc",
	"td", "tf", "tg", "th", "tj", "tk", "tl", "tm", "tn", "to", "tr",
	"tt", "tv", "tw", "tz", "ua", "ug", "uk", "us", "uy", "uz", "va",
	"vc", "ve", "vg", "vi", "vn", "vu", "wf", "ws", "ye", "yt", "za",
	"zm", "zw",
	// IDN ccTLDs (punycode): .中国, .рф, .香港, .한국, .ελ
	"xn--fiqs8s", "xn--p1ai", "xn--j6w193g", "xn--3e0b707e", "xn--qxam",
}

// sponsoredTLDs are the sTLDs operated under sponsorship agreements.
var sponsoredTLDs = []string{
	"aero", "asia", "cat", "coop", "edu", "gov", "int", "jobs", "mil",
	"mobi", "museum", "post", "tel", "travel", "xxx",
}

// genericTLDs are legacy gTLDs plus a representative slice of the new
// gTLD programme (the database snapshot is deliberately partial in the
// long tail; Lookup falls back to CategoryGeneric heuristics for
// unlisted multi-letter TLDs — see Lookup).
var genericTLDs = []string{
	"com", "net", "org", "info", "biz", "name", "pro",
	"app", "dev", "page", "blog", "cloud", "shop", "site", "online",
	"store", "tech", "space", "website", "live", "news", "top", "xyz",
	"club", "vip", "work", "world", "zone", "agency", "digital", "email",
	"google", "goog", "youtube", "android", "chrome", "play",
	"amazon", "aws", "microsoft", "azure", "windows", "office",
	"apple", "brave", "io2", // io2 is synthetic filler used by tests
}

// DB is the root-zone category database.
type DB struct {
	categories map[string]Category
}

// defaultDB is built once at init from the embedded tables.
var defaultDB = build()

func build() *DB {
	db := &DB{categories: make(map[string]Category, 300)}
	add := func(tlds []string, c Category) {
		for _, t := range tlds {
			db.categories[t] = c
		}
	}
	add(ccTLDs, CategoryCountryCode)
	add(sponsoredTLDs, CategorySponsored)
	add(genericTLDs, CategoryGeneric)
	db.categories["arpa"] = CategoryInfrastructure
	return db
}

// Default returns the embedded database snapshot.
func Default() *DB { return defaultDB }

// Lookup returns the category of a TLD (a single label, without dots).
// Two-letter TLDs absent from the snapshot are classified country-code
// (ISO reserves all alpha-2 codes); longer unlisted TLDs are classified
// generic, matching how IANA categorises new-programme strings.
func (db *DB) Lookup(tld string) Category {
	tld = domain.Normalize(tld)
	if tld == "" || strings.Contains(tld, ".") {
		return CategoryUnknown
	}
	if c, ok := db.categories[tld]; ok {
		return c
	}
	if len(tld) == 2 && !strings.HasPrefix(tld, "xn--") {
		return CategoryCountryCode
	}
	return CategoryGeneric
}

// IsTLD reports whether the suffix string is a single-label entry (a
// top-level domain) as opposed to a private domain entry.
func IsTLD(suffix string) bool {
	return suffix != "" && !strings.Contains(suffix, ".")
}

// ClassifyRule categorises a PSL rule the way the paper's Section 3
// does: rules from the PRIVATE section are private domains; ICANN
// rules take the root-zone category of the top-level domain they fall
// under, so registry second-level entries such as co.uk count as
// country-code.
func (db *DB) ClassifyRule(r psl.Rule) Category {
	if r.Section == psl.SectionPrivate {
		return CategoryPrivate
	}
	return db.Lookup(domain.LastLabels(r.Suffix, 1))
}

// CategoryHistogram counts a list's rules per category.
func (db *DB) CategoryHistogram(l *psl.List) map[Category]int {
	h := make(map[Category]int)
	for _, r := range l.Rules() {
		h[db.ClassifyRule(r)]++
	}
	return h
}
