package iana

import (
	"testing"

	"repro/internal/psl"
)

func TestLookupKnown(t *testing.T) {
	db := Default()
	cases := []struct {
		tld  string
		want Category
	}{
		{"com", CategoryGeneric},
		{"google", CategoryGeneric},
		{"uk", CategoryCountryCode},
		{"de", CategoryCountryCode},
		{"jp", CategoryCountryCode},
		{"edu", CategorySponsored},
		{"aero", CategorySponsored},
		{"arpa", CategoryInfrastructure},
		{"xn--fiqs8s", CategoryCountryCode},
	}
	for _, c := range cases {
		if got := db.Lookup(c.tld); got != c.want {
			t.Errorf("Lookup(%q) = %v, want %v", c.tld, got, c.want)
		}
	}
}

func TestLookupFallbacks(t *testing.T) {
	db := Default()
	// Unlisted alpha-2 strings are ccTLDs by ISO reservation.
	if got := db.Lookup("zz"); got != CategoryCountryCode {
		t.Errorf("Lookup(zz) = %v, want country-code", got)
	}
	// Unlisted longer strings are new-programme gTLDs.
	if got := db.Lookup("futurebrand"); got != CategoryGeneric {
		t.Errorf("Lookup(futurebrand) = %v, want generic", got)
	}
	// Non-TLD inputs are unknown.
	if got := db.Lookup("co.uk"); got != CategoryUnknown {
		t.Errorf("Lookup(co.uk) = %v, want unknown", got)
	}
	if got := db.Lookup(""); got != CategoryUnknown {
		t.Errorf("Lookup(\"\") = %v, want unknown", got)
	}
	// Normalisation applies.
	if got := db.Lookup("COM"); got != CategoryGeneric {
		t.Errorf("Lookup(COM) = %v, want generic", got)
	}
}

func TestIsTLD(t *testing.T) {
	if !IsTLD("com") || IsTLD("co.uk") || IsTLD("") {
		t.Error("IsTLD misclassifies")
	}
}

func TestClassifyRule(t *testing.T) {
	db := Default()
	l := psl.MustParse(`
// ===BEGIN ICANN DOMAINS===
com
uk
co.uk
edu
arpa
*.ck
// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===
github.io
// ===END PRIVATE DOMAINS===
`)
	want := map[string]Category{
		"com":       CategoryGeneric,
		"uk":        CategoryCountryCode,
		"co.uk":     CategoryCountryCode, // registry second level under .uk
		"edu":       CategorySponsored,
		"arpa":      CategoryInfrastructure,
		"*.ck":      CategoryCountryCode,
		"github.io": CategoryPrivate,
	}
	for _, r := range l.Rules() {
		if got := db.ClassifyRule(r); got != want[r.String()] {
			t.Errorf("ClassifyRule(%v) = %v, want %v", r, got, want[r.String()])
		}
	}
}

func TestCategoryHistogram(t *testing.T) {
	db := Default()
	l := psl.MustParse("com\nnet\nuk\nedu\nco.uk\n")
	h := db.CategoryHistogram(l)
	if h[CategoryGeneric] != 2 || h[CategoryCountryCode] != 2 ||
		h[CategorySponsored] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestCategoryString(t *testing.T) {
	for c, want := range map[Category]string{
		CategoryGeneric:        "generic",
		CategoryCountryCode:    "country-code",
		CategorySponsored:      "sponsored",
		CategoryInfrastructure: "infrastructure",
		CategoryPrivate:        "private",
		CategoryUnknown:        "unknown",
	} {
		if c.String() != want {
			t.Errorf("Category(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	db := Default()
	for i := 0; i < b.N; i++ {
		db.Lookup("uk")
	}
}
