package dnssim

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// recordJSON is the wire shape of one record on the debug endpoint.
type recordJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Data string `json:"data"`
}

// parseRType maps a mnemonic back to a record type.
func parseRType(s string) (RType, error) {
	switch s {
	case "A":
		return TypeA, nil
	case "TXT":
		return TypeTXT, nil
	case "CNAME":
		return TypeCNAME, nil
	default:
		return 0, fmt.Errorf("dnssim: unknown record type %q", s)
	}
}

// Handler exposes the zone over HTTP for test orchestration and
// debugging — the write-path smoke test plants _psl TXT records here
// before submitting:
//
//	GET  -> JSON array of all records (the Dump order)
//	POST -> add one record from a {"name","type","data"} body
//
// The handler is a debug surface, deliberately without authentication,
// and is only mounted under /debug/ by pslserver.
func (z *Zone) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			recs := z.Dump()
			out := make([]recordJSON, 0, len(recs))
			for _, rec := range recs {
				out = append(out, recordJSON{Name: rec.Name, Type: rec.Type.String(), Data: rec.Data})
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(out)
		case http.MethodPost:
			var rec recordJSON
			if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
				http.Error(w, "dnssim: bad record body: "+err.Error(), http.StatusBadRequest)
				return
			}
			if rec.Name == "" || rec.Data == "" {
				http.Error(w, "dnssim: record needs name and data", http.StatusBadRequest)
				return
			}
			t, err := parseRType(rec.Type)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			z.Add(rec.Name, t, rec.Data)
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "dnssim: GET or POST", http.StatusMethodNotAllowed)
		}
	})
}
