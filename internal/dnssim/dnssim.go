// Package dnssim is a small in-memory DNS substrate: zones of A, TXT
// and CNAME records with CNAME chasing and wildcard owner names. The
// DMARC module (package dmarc) resolves policy records against it, and
// tests use it wherever the paper's pipeline would have queried the
// real DNS.
package dnssim

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/domain"
)

// RType is a record type.
type RType uint8

const (
	// TypeA is an IPv4 address record.
	TypeA RType = iota
	// TypeTXT is a text record.
	TypeTXT
	// TypeCNAME is an alias record.
	TypeCNAME
)

// String returns the conventional record type mnemonic.
func (t RType) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeTXT:
		return "TXT"
	case TypeCNAME:
		return "CNAME"
	default:
		return "?"
	}
}

// Record is one resource record.
type Record struct {
	Name string
	Type RType
	Data string
}

// Errors returned by Resolve.
var (
	// ErrNXDomain reports that the name does not exist at all.
	ErrNXDomain = errors.New("dnssim: NXDOMAIN")
	// ErrNoData reports that the name exists but has no records of the
	// requested type.
	ErrNoData = errors.New("dnssim: no data")
	// ErrLoop reports a CNAME chain that exceeded the chase limit.
	ErrLoop = errors.New("dnssim: CNAME loop")
)

// maxChase bounds CNAME chain length, like real resolvers do.
const maxChase = 8

// Zone is a thread-safe record store.
type Zone struct {
	mu sync.RWMutex
	// records maps normalized owner name -> type -> data values.
	records map[string]map[RType][]string
	queries int
}

// NewZone creates an empty zone.
func NewZone() *Zone {
	return &Zone{records: make(map[string]map[RType][]string)}
}

// Add inserts a record. Owner names may carry a leading "*." label for
// wildcard records (matched per RFC 1034: one or more labels).
func (z *Zone) Add(name string, t RType, data string) {
	name = domain.Normalize(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	byType := z.records[name]
	if byType == nil {
		byType = make(map[RType][]string)
		z.records[name] = byType
	}
	byType[t] = append(byType[t], data)
}

// AddTXT is shorthand for Add(name, TypeTXT, data).
func (z *Zone) AddTXT(name, data string) { z.Add(name, TypeTXT, data) }

// Remove deletes all records of a type at a name.
func (z *Zone) Remove(name string, t RType) {
	name = domain.Normalize(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	if byType := z.records[name]; byType != nil {
		delete(byType, t)
		if len(byType) == 0 {
			delete(z.records, name)
		}
	}
}

// Queries reports how many lookups the zone has served.
func (z *Zone) Queries() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.queries
}

// lookupOne finds records at exactly one owner name, considering
// wildcard owners.
func (z *Zone) lookupOne(name string, t RType) (values []string, cname string, exists bool) {
	byType, ok := z.records[name]
	if !ok {
		// Wildcard match: "*.parent" covers any name below parent that
		// has no explicit entry.
		if parent, has := domain.Parent(name); has {
			if wc, ok := z.records["*."+parent]; ok {
				byType, ok = wc, true
				_ = ok
			}
		}
	}
	if byType == nil {
		return nil, "", false
	}
	if c, ok := byType[TypeCNAME]; ok && len(c) > 0 && t != TypeCNAME {
		return nil, c[0], true
	}
	return byType[t], "", true
}

// Resolve looks up records of the given type, chasing CNAMEs.
func (z *Zone) Resolve(name string, t RType) ([]string, error) {
	name = domain.Normalize(name)
	z.mu.Lock()
	z.queries++
	z.mu.Unlock()

	z.mu.RLock()
	defer z.mu.RUnlock()
	for hop := 0; hop < maxChase; hop++ {
		values, cname, exists := z.lookupOne(name, t)
		if !exists {
			return nil, fmt.Errorf("%w: %s %s", ErrNXDomain, name, t)
		}
		if cname != "" {
			name = domain.Normalize(cname)
			continue
		}
		if len(values) == 0 {
			return nil, fmt.Errorf("%w: %s %s", ErrNoData, name, t)
		}
		out := make([]string, len(values))
		copy(out, values)
		return out, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrLoop, name)
}

// TXT resolves text records, the shape DMARC needs.
func (z *Zone) TXT(name string) ([]string, error) {
	return z.Resolve(name, TypeTXT)
}

// Dump returns all records sorted by owner for debugging.
func (z *Zone) Dump() []Record {
	z.mu.RLock()
	defer z.mu.RUnlock()
	var out []Record
	for name, byType := range z.records {
		for t, values := range byType {
			for _, v := range values {
				out = append(out, Record{Name: name, Type: t, Data: v})
			}
		}
	}
	sortRecords(out)
	return out
}

func sortRecords(rs []Record) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && less(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func less(a, b Record) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	return a.Data < b.Data
}

// Resolver is the lookup interface consumed by package dmarc, satisfied
// by *Zone.
type Resolver interface {
	TXT(name string) ([]string, error)
}

// ensure Zone satisfies Resolver.
var _ Resolver = (*Zone)(nil)
