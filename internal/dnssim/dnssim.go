// Package dnssim is a small in-memory DNS substrate: zones of A, TXT
// and CNAME records with CNAME chasing and wildcard owner names. The
// DMARC module (package dmarc) resolves policy records against it, and
// tests use it wherever the paper's pipeline would have queried the
// real DNS.
package dnssim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/domain"
)

// RType is a record type.
type RType uint8

const (
	// TypeA is an IPv4 address record.
	TypeA RType = iota
	// TypeTXT is a text record.
	TypeTXT
	// TypeCNAME is an alias record.
	TypeCNAME
)

// String returns the conventional record type mnemonic.
func (t RType) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeTXT:
		return "TXT"
	case TypeCNAME:
		return "CNAME"
	default:
		return "?"
	}
}

// Record is one resource record.
type Record struct {
	Name string
	Type RType
	Data string
}

// Errors returned by Resolve.
var (
	// ErrNXDomain reports that the name does not exist at all.
	ErrNXDomain = errors.New("dnssim: NXDOMAIN")
	// ErrNoData reports that the name exists but has no records of the
	// requested type.
	ErrNoData = errors.New("dnssim: no data")
	// ErrLoop reports a CNAME chain that revisited an owner name — a
	// genuine alias cycle that no amount of chasing resolves.
	ErrLoop = errors.New("dnssim: CNAME loop")
	// ErrChainTooDeep reports a loop-free CNAME chain longer than the
	// chase bound, the cap real resolvers apply before giving up.
	ErrChainTooDeep = errors.New("dnssim: CNAME chain too deep")
	// ErrTimeout reports an injected resolver timeout (the chaos fault
	// layer; no real time passes).
	ErrTimeout = errors.New("dnssim: query timed out")
)

// maxChase bounds CNAME chain length, like real resolvers do.
const maxChase = 8

// FaultKind selects an injected failure for the fault layer. The DNS
// authorization leg of the submission pipeline uses these to model the
// two failure classes ZDNS-style bulk verification meets in practice:
// names that do not resolve and servers that never answer.
type FaultKind uint8

const (
	// FaultNone disables injection.
	FaultNone FaultKind = iota
	// FaultNXDomain answers NXDOMAIN regardless of zone contents.
	FaultNXDomain
	// FaultTimeout answers ErrTimeout, modelling an unresponsive server.
	FaultTimeout
)

// String names the fault for logs and verdicts.
func (k FaultKind) String() string {
	switch k {
	case FaultNXDomain:
		return "nxdomain"
	case FaultTimeout:
		return "timeout"
	default:
		return "none"
	}
}

// Zone is a thread-safe record store.
type Zone struct {
	mu sync.RWMutex
	// records maps normalized owner name -> type -> data values.
	records map[string]map[RType][]string
	queries int

	// Fault layer: per-name pinned faults win over the seeded rate.
	faultMu   sync.Mutex
	perName   map[string]FaultKind
	frng      *rand.Rand
	fkind     FaultKind
	frate     float64
	faultsHit int
}

// NewZone creates an empty zone.
func NewZone() *Zone {
	return &Zone{
		records: make(map[string]map[RType][]string),
		perName: make(map[string]FaultKind),
	}
}

// SetFault pins a deterministic fault for queries whose original name
// (before CNAME chasing) matches. FaultNone clears the pin.
func (z *Zone) SetFault(name string, k FaultKind) {
	name = domain.Normalize(name)
	z.faultMu.Lock()
	defer z.faultMu.Unlock()
	if k == FaultNone {
		delete(z.perName, name)
		return
	}
	z.perName[name] = k
}

// SetFaultRate arms seeded random fault injection: each query not
// covered by a per-name pin takes fault k with probability rate. Equal
// seeds replay identical decisions. Rate <= 0 or FaultNone disarms.
func (z *Zone) SetFaultRate(seed int64, k FaultKind, rate float64) {
	z.faultMu.Lock()
	defer z.faultMu.Unlock()
	if k == FaultNone || rate <= 0 {
		z.fkind, z.frate, z.frng = FaultNone, 0, nil
		return
	}
	z.fkind, z.frate = k, rate
	z.frng = rand.New(rand.NewSource(seed))
}

// FaultsInjected reports how many queries took an injected fault.
func (z *Zone) FaultsInjected() int {
	z.faultMu.Lock()
	defer z.faultMu.Unlock()
	return z.faultsHit
}

// decideFault resolves the fault layer for one query name.
func (z *Zone) decideFault(name string) FaultKind {
	z.faultMu.Lock()
	defer z.faultMu.Unlock()
	if k, ok := z.perName[name]; ok {
		z.faultsHit++
		return k
	}
	if z.fkind != FaultNone && z.frng != nil && z.frng.Float64() < z.frate {
		z.faultsHit++
		return z.fkind
	}
	return FaultNone
}

// Add inserts a record. Owner names may carry a leading "*." label for
// wildcard records (matched per RFC 1034: one or more labels).
func (z *Zone) Add(name string, t RType, data string) {
	name = domain.Normalize(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	byType := z.records[name]
	if byType == nil {
		byType = make(map[RType][]string)
		z.records[name] = byType
	}
	byType[t] = append(byType[t], data)
}

// AddTXT is shorthand for Add(name, TypeTXT, data).
func (z *Zone) AddTXT(name, data string) { z.Add(name, TypeTXT, data) }

// Remove deletes all records of a type at a name.
func (z *Zone) Remove(name string, t RType) {
	name = domain.Normalize(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	if byType := z.records[name]; byType != nil {
		delete(byType, t)
		if len(byType) == 0 {
			delete(z.records, name)
		}
	}
}

// Queries reports how many lookups the zone has served.
func (z *Zone) Queries() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.queries
}

// lookupOne finds records at exactly one owner name, considering
// wildcard owners.
func (z *Zone) lookupOne(name string, t RType) (values []string, cname string, exists bool) {
	byType, ok := z.records[name]
	if !ok {
		// Wildcard match per RFC 1034 §4.3.3: "*.owner" covers any name
		// one OR MORE labels below owner that has no explicit entry, so
		// walk every ancestor from the closest up; the closest enclosing
		// wildcard wins (multi-label owners like a.b under *.example
		// match, which is exactly how multi-label _psl TXT owners are
		// published in the wild).
		for p, has := domain.Parent(name); has; p, has = domain.Parent(p) {
			if wc, ok := z.records["*."+p]; ok {
				byType = wc
				break
			}
		}
	}
	if byType == nil {
		return nil, "", false
	}
	if c, ok := byType[TypeCNAME]; ok && len(c) > 0 && t != TypeCNAME {
		return nil, c[0], true
	}
	return byType[t], "", true
}

// Resolve looks up records of the given type, chasing CNAMEs for every
// query type (TXT included — the _psl authorization convention leans on
// TXT-behind-CNAME delegation). Chains are bounded two ways: an owner
// name seen twice is a loop (ErrLoop), and a loop-free chain longer
// than maxChase hops is cut with ErrChainTooDeep.
func (z *Zone) Resolve(name string, t RType) ([]string, error) {
	name = domain.Normalize(name)
	z.mu.Lock()
	z.queries++
	z.mu.Unlock()

	switch z.decideFault(name) {
	case FaultNXDomain:
		return nil, fmt.Errorf("%w: %s %s (injected)", ErrNXDomain, name, t)
	case FaultTimeout:
		return nil, fmt.Errorf("%w: %s %s (injected)", ErrTimeout, name, t)
	}

	z.mu.RLock()
	defer z.mu.RUnlock()
	seen := map[string]bool{name: true}
	for hop := 0; hop < maxChase; hop++ {
		values, cname, exists := z.lookupOne(name, t)
		if !exists {
			return nil, fmt.Errorf("%w: %s %s", ErrNXDomain, name, t)
		}
		if cname != "" {
			name = domain.Normalize(cname)
			if seen[name] {
				return nil, fmt.Errorf("%w: %s", ErrLoop, name)
			}
			seen[name] = true
			continue
		}
		if len(values) == 0 {
			return nil, fmt.Errorf("%w: %s %s", ErrNoData, name, t)
		}
		out := make([]string, len(values))
		copy(out, values)
		return out, nil
	}
	return nil, fmt.Errorf("%w: %s (limit %d)", ErrChainTooDeep, name, maxChase)
}

// TXT resolves text records, the shape DMARC needs.
func (z *Zone) TXT(name string) ([]string, error) {
	return z.Resolve(name, TypeTXT)
}

// Dump returns all records sorted by owner for debugging.
func (z *Zone) Dump() []Record {
	z.mu.RLock()
	defer z.mu.RUnlock()
	var out []Record
	for name, byType := range z.records {
		for t, values := range byType {
			for _, v := range values {
				out = append(out, Record{Name: name, Type: t, Data: v})
			}
		}
	}
	sortRecords(out)
	return out
}

func sortRecords(rs []Record) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && less(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func less(a, b Record) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	return a.Data < b.Data
}

// Resolver is the lookup interface consumed by package dmarc, satisfied
// by *Zone.
type Resolver interface {
	TXT(name string) ([]string, error)
}

// ensure Zone satisfies Resolver.
var _ Resolver = (*Zone)(nil)
