package dnssim

import (
	"errors"
	"testing"
)

func TestResolveBasic(t *testing.T) {
	z := NewZone()
	z.Add("example.com", TypeA, "192.0.2.1")
	z.AddTXT("example.com", "hello")

	got, err := z.Resolve("EXAMPLE.com.", TypeA)
	if err != nil || len(got) != 1 || got[0] != "192.0.2.1" {
		t.Fatalf("A = %v, %v", got, err)
	}
	txt, err := z.TXT("example.com")
	if err != nil || txt[0] != "hello" {
		t.Fatalf("TXT = %v, %v", txt, err)
	}
}

func TestResolveErrors(t *testing.T) {
	z := NewZone()
	z.Add("example.com", TypeA, "192.0.2.1")

	_, err := z.Resolve("missing.example.com", TypeA)
	if !errors.Is(err, ErrNXDomain) {
		t.Errorf("missing name -> %v, want NXDOMAIN", err)
	}
	_, err = z.Resolve("example.com", TypeTXT)
	if !errors.Is(err, ErrNoData) {
		t.Errorf("missing type -> %v, want NoData", err)
	}
}

func TestCNAMEChase(t *testing.T) {
	z := NewZone()
	z.Add("alias.example.com", TypeCNAME, "target.example.net")
	z.Add("target.example.net", TypeA, "192.0.2.7")
	got, err := z.Resolve("alias.example.com", TypeA)
	if err != nil || got[0] != "192.0.2.7" {
		t.Fatalf("CNAME chase = %v, %v", got, err)
	}
	// Asking for the CNAME itself returns it directly.
	got, err = z.Resolve("alias.example.com", TypeCNAME)
	if err != nil || got[0] != "target.example.net" {
		t.Fatalf("CNAME direct = %v, %v", got, err)
	}
}

func TestCNAMELoop(t *testing.T) {
	z := NewZone()
	z.Add("a.example", TypeCNAME, "b.example")
	z.Add("b.example", TypeCNAME, "a.example")
	_, err := z.Resolve("a.example", TypeA)
	if !errors.Is(err, ErrLoop) {
		t.Errorf("loop -> %v, want ErrLoop", err)
	}
}

func TestWildcardOwner(t *testing.T) {
	z := NewZone()
	z.AddTXT("*.mail.example.com", "wild")
	z.AddTXT("special.mail.example.com", "explicit")

	got, err := z.TXT("anything.mail.example.com")
	if err != nil || got[0] != "wild" {
		t.Fatalf("wildcard = %v, %v", got, err)
	}
	got, err = z.TXT("special.mail.example.com")
	if err != nil || got[0] != "explicit" {
		t.Fatalf("explicit beats wildcard: %v, %v", got, err)
	}
	// The wildcard does not apply at its own parent.
	if _, err := z.TXT("mail.example.com"); !errors.Is(err, ErrNXDomain) {
		t.Errorf("parent of wildcard -> %v, want NXDOMAIN", err)
	}
}

func TestRemove(t *testing.T) {
	z := NewZone()
	z.AddTXT("x.example", "v")
	z.Remove("x.example", TypeTXT)
	if _, err := z.TXT("x.example"); !errors.Is(err, ErrNXDomain) {
		t.Errorf("after remove -> %v, want NXDOMAIN", err)
	}
}

func TestMultipleValues(t *testing.T) {
	z := NewZone()
	z.AddTXT("multi.example", "one")
	z.AddTXT("multi.example", "two")
	got, err := z.TXT("multi.example")
	if err != nil || len(got) != 2 {
		t.Fatalf("multi = %v, %v", got, err)
	}
}

func TestQueriesCounterAndDump(t *testing.T) {
	z := NewZone()
	z.Add("a.example", TypeA, "192.0.2.1")
	z.AddTXT("a.example", "t")
	_, _ = z.TXT("a.example")
	_, _ = z.Resolve("a.example", TypeA)
	if z.Queries() != 2 {
		t.Errorf("queries = %d, want 2", z.Queries())
	}
	dump := z.Dump()
	if len(dump) != 2 {
		t.Fatalf("dump = %v", dump)
	}
	if dump[0].Type != TypeA || dump[1].Type != TypeTXT {
		t.Errorf("dump order = %v", dump)
	}
}

func TestResolveConcurrent(t *testing.T) {
	z := NewZone()
	z.AddTXT("c.example", "v")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				if _, err := z.TXT("c.example"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

func TestRTypeString(t *testing.T) {
	if TypeA.String() != "A" || TypeTXT.String() != "TXT" || TypeCNAME.String() != "CNAME" {
		t.Error("record type names wrong")
	}
}
