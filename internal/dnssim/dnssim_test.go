package dnssim

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestResolveBasic(t *testing.T) {
	z := NewZone()
	z.Add("example.com", TypeA, "192.0.2.1")
	z.AddTXT("example.com", "hello")

	got, err := z.Resolve("EXAMPLE.com.", TypeA)
	if err != nil || len(got) != 1 || got[0] != "192.0.2.1" {
		t.Fatalf("A = %v, %v", got, err)
	}
	txt, err := z.TXT("example.com")
	if err != nil || txt[0] != "hello" {
		t.Fatalf("TXT = %v, %v", txt, err)
	}
}

func TestResolveErrors(t *testing.T) {
	z := NewZone()
	z.Add("example.com", TypeA, "192.0.2.1")

	_, err := z.Resolve("missing.example.com", TypeA)
	if !errors.Is(err, ErrNXDomain) {
		t.Errorf("missing name -> %v, want NXDOMAIN", err)
	}
	_, err = z.Resolve("example.com", TypeTXT)
	if !errors.Is(err, ErrNoData) {
		t.Errorf("missing type -> %v, want NoData", err)
	}
}

func TestCNAMEChase(t *testing.T) {
	z := NewZone()
	z.Add("alias.example.com", TypeCNAME, "target.example.net")
	z.Add("target.example.net", TypeA, "192.0.2.7")
	got, err := z.Resolve("alias.example.com", TypeA)
	if err != nil || got[0] != "192.0.2.7" {
		t.Fatalf("CNAME chase = %v, %v", got, err)
	}
	// Asking for the CNAME itself returns it directly.
	got, err = z.Resolve("alias.example.com", TypeCNAME)
	if err != nil || got[0] != "target.example.net" {
		t.Fatalf("CNAME direct = %v, %v", got, err)
	}
}

func TestCNAMELoop(t *testing.T) {
	z := NewZone()
	z.Add("a.example", TypeCNAME, "b.example")
	z.Add("b.example", TypeCNAME, "a.example")
	_, err := z.Resolve("a.example", TypeA)
	if !errors.Is(err, ErrLoop) {
		t.Errorf("loop -> %v, want ErrLoop", err)
	}
}

func TestWildcardOwner(t *testing.T) {
	z := NewZone()
	z.AddTXT("*.mail.example.com", "wild")
	z.AddTXT("special.mail.example.com", "explicit")

	got, err := z.TXT("anything.mail.example.com")
	if err != nil || got[0] != "wild" {
		t.Fatalf("wildcard = %v, %v", got, err)
	}
	got, err = z.TXT("special.mail.example.com")
	if err != nil || got[0] != "explicit" {
		t.Fatalf("explicit beats wildcard: %v, %v", got, err)
	}
	// The wildcard does not apply at its own parent.
	if _, err := z.TXT("mail.example.com"); !errors.Is(err, ErrNXDomain) {
		t.Errorf("parent of wildcard -> %v, want NXDOMAIN", err)
	}
}

func TestRemove(t *testing.T) {
	z := NewZone()
	z.AddTXT("x.example", "v")
	z.Remove("x.example", TypeTXT)
	if _, err := z.TXT("x.example"); !errors.Is(err, ErrNXDomain) {
		t.Errorf("after remove -> %v, want NXDOMAIN", err)
	}
}

func TestMultipleValues(t *testing.T) {
	z := NewZone()
	z.AddTXT("multi.example", "one")
	z.AddTXT("multi.example", "two")
	got, err := z.TXT("multi.example")
	if err != nil || len(got) != 2 {
		t.Fatalf("multi = %v, %v", got, err)
	}
}

func TestQueriesCounterAndDump(t *testing.T) {
	z := NewZone()
	z.Add("a.example", TypeA, "192.0.2.1")
	z.AddTXT("a.example", "t")
	_, _ = z.TXT("a.example")
	_, _ = z.Resolve("a.example", TypeA)
	if z.Queries() != 2 {
		t.Errorf("queries = %d, want 2", z.Queries())
	}
	dump := z.Dump()
	if len(dump) != 2 {
		t.Fatalf("dump = %v", dump)
	}
	if dump[0].Type != TypeA || dump[1].Type != TypeTXT {
		t.Errorf("dump order = %v", dump)
	}
}

func TestResolveConcurrent(t *testing.T) {
	z := NewZone()
	z.AddTXT("c.example", "v")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				if _, err := z.TXT("c.example"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

func TestRTypeString(t *testing.T) {
	if TypeA.String() != "A" || TypeTXT.String() != "TXT" || TypeCNAME.String() != "CNAME" {
		t.Error("record type names wrong")
	}
}

func TestTXTBehindCNAME(t *testing.T) {
	// The _psl convention in the wild: the TXT owner is an alias into a
	// hosting provider's zone, sometimes through several hops.
	z := NewZone()
	z.Add("_psl.platform.example", TypeCNAME, "psl-auth.hosting.example")
	z.Add("psl-auth.hosting.example", TypeCNAME, "final.hosting.example")
	z.AddTXT("final.hosting.example", "psl-submission-id")

	got, err := z.TXT("_psl.platform.example")
	if err != nil || len(got) != 1 || got[0] != "psl-submission-id" {
		t.Fatalf("TXT behind CNAME chain = %v, %v", got, err)
	}
}

func TestTXTCNAMELoop(t *testing.T) {
	z := NewZone()
	z.Add("_psl.a.example", TypeCNAME, "_psl.b.example")
	z.Add("_psl.b.example", TypeCNAME, "_psl.a.example")
	if _, err := z.TXT("_psl.a.example"); !errors.Is(err, ErrLoop) {
		t.Errorf("TXT loop -> %v, want ErrLoop", err)
	}
	// A one-hop self-alias is the tightest loop.
	z.Add("self.example", TypeCNAME, "self.example")
	if _, err := z.TXT("self.example"); !errors.Is(err, ErrLoop) {
		t.Errorf("self loop -> %v, want ErrLoop", err)
	}
}

func TestCNAMEChainTooDeep(t *testing.T) {
	// A loop-free chain longer than the chase bound is cut with the
	// depth error, not misreported as a loop.
	z := NewZone()
	for i := 0; i < 12; i++ {
		z.Add(fmt.Sprintf("hop%d.example", i), TypeCNAME, fmt.Sprintf("hop%d.example", i+1))
	}
	z.AddTXT("hop12.example", "end")
	_, err := z.TXT("hop0.example")
	if !errors.Is(err, ErrChainTooDeep) {
		t.Errorf("deep chain -> %v, want ErrChainTooDeep", err)
	}
	if errors.Is(err, ErrLoop) {
		t.Errorf("deep chain misreported as loop: %v", err)
	}
	// At or under the bound the chain resolves.
	z2 := NewZone()
	for i := 0; i < maxChase-1; i++ {
		z2.Add(fmt.Sprintf("hop%d.example", i), TypeCNAME, fmt.Sprintf("hop%d.example", i+1))
	}
	z2.AddTXT(fmt.Sprintf("hop%d.example", maxChase-1), "end")
	if got, err := z2.TXT("hop0.example"); err != nil || got[0] != "end" {
		t.Fatalf("chain at bound = %v, %v", got, err)
	}
}

func TestWildcardMultiLabel(t *testing.T) {
	// RFC 1034 wildcards cover one OR MORE labels below the owner; a
	// multi-label _psl owner like _psl.deep.customer.platform.example
	// must match *.platform.example.
	z := NewZone()
	z.AddTXT("*.platform.example", "wild")

	for _, name := range []string{
		"one.platform.example",
		"two.one.platform.example",
		"_psl.deep.customer.platform.example",
	} {
		got, err := z.TXT(name)
		if err != nil || got[0] != "wild" {
			t.Errorf("wildcard for %s = %v, %v", name, got, err)
		}
	}
	// The closest enclosing wildcard wins over an outer one.
	z.AddTXT("*.inner.platform.example", "inner")
	if got, _ := z.TXT("x.inner.platform.example"); got[0] != "inner" {
		t.Errorf("closest wildcard = %v, want inner", got)
	}
	if got, _ := z.TXT("a.b.inner.platform.example"); got[0] != "inner" {
		t.Errorf("closest wildcard multi-label = %v, want inner", got)
	}
}

func TestFaultPinned(t *testing.T) {
	z := NewZone()
	z.AddTXT("_psl.ok.example", "v")
	z.AddTXT("_psl.down.example", "v")

	z.SetFault("_psl.down.example", FaultTimeout)
	if _, err := z.TXT("_psl.down.example"); !errors.Is(err, ErrTimeout) {
		t.Errorf("pinned timeout -> %v, want ErrTimeout", err)
	}
	if _, err := z.TXT("_psl.ok.example"); err != nil {
		t.Errorf("unpinned name faulted: %v", err)
	}

	z.SetFault("_psl.down.example", FaultNXDomain)
	if _, err := z.TXT("_psl.down.example"); !errors.Is(err, ErrNXDomain) {
		t.Errorf("pinned nxdomain -> %v, want ErrNXDomain", err)
	}

	z.SetFault("_psl.down.example", FaultNone)
	if _, err := z.TXT("_psl.down.example"); err != nil {
		t.Errorf("cleared fault still fires: %v", err)
	}
	if z.FaultsInjected() != 2 {
		t.Errorf("FaultsInjected = %d, want 2", z.FaultsInjected())
	}
}

func TestFaultRateSeeded(t *testing.T) {
	run := func() (faults int) {
		z := NewZone()
		z.AddTXT("r.example", "v")
		z.SetFaultRate(42, FaultNXDomain, 0.3)
		for i := 0; i < 200; i++ {
			if _, err := z.TXT("r.example"); err != nil {
				faults++
			}
		}
		return faults
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("seeded fault rate not reproducible: %d vs %d", a, b)
	}
	if a < 30 || a > 90 {
		t.Errorf("fault count %d wildly off a 0.3 rate over 200 queries", a)
	}
	// Disarming stops injection.
	z := NewZone()
	z.AddTXT("r.example", "v")
	z.SetFaultRate(42, FaultNXDomain, 0.9)
	z.SetFaultRate(0, FaultNone, 0)
	for i := 0; i < 50; i++ {
		if _, err := z.TXT("r.example"); err != nil {
			t.Fatalf("disarmed zone faulted: %v", err)
		}
	}
}

func TestZoneHandler(t *testing.T) {
	z := NewZone()
	ts := httptest.NewServer(z.Handler())
	defer ts.Close()

	body := `{"name":"_psl.newsuffix.example","type":"TXT","data":"sub-123"}`
	resp, err := http.Post(ts.URL, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	if got, err := z.TXT("_psl.newsuffix.example"); err != nil || got[0] != "sub-123" {
		t.Fatalf("record not planted: %v, %v", got, err)
	}

	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var recs []struct{ Name, Type, Data string }
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(recs) != 1 || recs[0].Name != "_psl.newsuffix.example" || recs[0].Type != "TXT" {
		t.Fatalf("GET dump = %+v", recs)
	}

	// Bad bodies are rejected.
	for _, bad := range []string{`{`, `{"name":"","type":"TXT","data":"x"}`, `{"name":"n.example","type":"MX","data":"x"}`} {
		resp, err := http.Post(ts.URL, "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad body %q -> status %d", bad, resp.StatusCode)
		}
	}
}
