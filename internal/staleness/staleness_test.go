package staleness

import (
	"strings"
	"testing"
)

// linearHarm is a simple monotone harm curve for tests.
func linearHarm(ageDays int) int { return ageDays * 10 }

func TestFixedAgesLinearly(t *testing.T) {
	res := Simulate(Config{Seed: 1, HorizonDays: 1000, Trials: 1},
		Policy{Name: "fixed", Kind: Fixed, InitialAgeDays: 100}, nil)
	// Ages run 101..1100; mean 600.5, median ~601.
	if res.MeanAgeDays < 595 || res.MeanAgeDays > 606 {
		t.Errorf("fixed mean age = %v, want ~600", res.MeanAgeDays)
	}
	if res.P95AgeDays < 1000 {
		t.Errorf("fixed p95 = %v, want near horizon end", res.P95AgeDays)
	}
}

func TestReliablePeriodicStaysFresh(t *testing.T) {
	res := Simulate(Config{Seed: 1, HorizonDays: 1000, Trials: 10},
		Policy{Kind: Periodic, IntervalDays: 1, FailureProb: 0}, nil)
	if res.MeanAgeDays > 1.01 {
		t.Errorf("daily updater mean age = %v, want ~1", res.MeanAgeDays)
	}
}

func TestFailureProbDegradesFreshness(t *testing.T) {
	cfg := Config{Seed: 7, HorizonDays: 2000, Trials: 20}
	reliable := Simulate(cfg, Policy{Kind: Restart, IntervalDays: 7, FailureProb: 0.01}, nil)
	flaky := Simulate(cfg, Policy{Kind: Restart, IntervalDays: 7, FailureProb: 0.8}, nil)
	if flaky.MeanAgeDays <= reliable.MeanAgeDays {
		t.Errorf("flaky (%v) should be staler than reliable (%v)",
			flaky.MeanAgeDays, reliable.MeanAgeDays)
	}
}

func TestCadenceOrdersStaleness(t *testing.T) {
	cfg := Config{Seed: 3, HorizonDays: 2000, Trials: 20}
	weekly := Simulate(cfg, Policy{Kind: Restart, IntervalDays: 7, FailureProb: 0.05}, nil)
	yearly := Simulate(cfg, Policy{Kind: Restart, IntervalDays: 365, FailureProb: 0.05}, nil)
	if weekly.MeanAgeDays >= yearly.MeanAgeDays {
		t.Errorf("weekly (%v) should be fresher than yearly (%v)",
			weekly.MeanAgeDays, yearly.MeanAgeDays)
	}
}

func TestHarmTracksAge(t *testing.T) {
	cfg := Config{Seed: 5, HorizonDays: 1000, Trials: 5}
	fresh := Simulate(cfg, Policy{Kind: Periodic, IntervalDays: 1, FailureProb: 0}, linearHarm)
	stale := Simulate(cfg, Policy{Kind: Fixed, InitialAgeDays: 500}, linearHarm)
	if fresh.MeanMissingHostnames >= stale.MeanMissingHostnames {
		t.Errorf("fresh harm %v should be below stale harm %v",
			fresh.MeanMissingHostnames, stale.MeanMissingHostnames)
	}
	// Harm is the curve applied to the mean age, for a linear curve.
	want := stale.MeanAgeDays * 10
	if d := stale.MeanMissingHostnames - want; d > 1 || d < -1 {
		t.Errorf("linear-harm identity violated: %v vs %v", stale.MeanMissingHostnames, want)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 9, HorizonDays: 500, Trials: 5}
	p := Policy{Kind: Restart, IntervalDays: 30, FailureProb: 0.3}
	a := Simulate(cfg, p, nil)
	b := Simulate(cfg, p, nil)
	if a != b {
		t.Error("identical seeds produced different results")
	}
}

func TestCompareAndDefaults(t *testing.T) {
	cfg := Config{Seed: 1, HorizonDays: 365, Trials: 3}
	results := Compare(cfg, DefaultPolicies(), linearHarm)
	if len(results) != len(DefaultPolicies()) {
		t.Fatalf("results = %d", len(results))
	}
	// The daily periodic updater must beat the fixed policy.
	var fixed, daily Result
	for _, r := range results {
		switch {
		case strings.HasPrefix(r.Policy.Name, "fixed"):
			fixed = r
		case r.Policy.Name == "periodic daily":
			daily = r
		}
	}
	if daily.MeanMissingHostnames >= fixed.MeanMissingHostnames {
		t.Errorf("daily updater (%v) should beat fixed (%v)",
			daily.MeanMissingHostnames, fixed.MeanMissingHostnames)
	}
	if !strings.Contains(fixed.String(), "mean age") {
		t.Errorf("String() = %q", fixed.String())
	}
}

func TestKindString(t *testing.T) {
	if Fixed.String() != "fixed" || Build.String() != "build" ||
		Restart.String() != "restart" || Periodic.String() != "periodic" {
		t.Error("kind names wrong")
	}
}

func BenchmarkSimulateFiveYears(b *testing.B) {
	cfg := Config{Seed: 1}
	p := Policy{Kind: Restart, IntervalDays: 7, FailureProb: 0.05}
	for i := 0; i < b.N; i++ {
		Simulate(cfg, p, linearHarm)
	}
}
