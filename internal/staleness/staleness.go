// Package staleness simulates how the update strategies of the paper's
// Table 1 taxonomy translate into effective list age — and, through the
// measured harm curve, into misclassified hostnames. It extends the
// paper's analysis: where the paper measures the ages projects *have*,
// the simulator predicts the ages a *policy* produces, quantifying how
// much privacy each strategy buys.
//
// The model is a day-granularity Monte Carlo: a project refreshes its
// effective list on strategy-specific events (releases, restarts,
// periodic timers), each attempt failing independently with a
// configurable probability, in which case the previous copy stays in
// effect — the fallback semantics of package fetch.
package staleness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
)

// Kind is the update strategy being simulated.
type Kind uint8

const (
	// Fixed never updates.
	Fixed Kind = iota
	// Build refreshes the embedded copy at each release; users run the
	// latest release.
	Build
	// Restart attempts a network update at each restart, falling back
	// to the copy obtained at the last successful attempt.
	Restart
	// Periodic attempts a network update on a timer while running.
	Periodic
)

// String names the strategy.
func (k Kind) String() string {
	switch k {
	case Build:
		return "build"
	case Restart:
		return "restart"
	case Periodic:
		return "periodic"
	default:
		return "fixed"
	}
}

// Policy describes one project's update behaviour.
type Policy struct {
	// Name labels the policy in reports.
	Name string
	// Kind selects the mechanism.
	Kind Kind
	// IntervalDays is the event cadence: release interval for Build,
	// restart interval for Restart, timer for Periodic. Ignored for
	// Fixed.
	IntervalDays int
	// FailureProb is the probability an individual update attempt
	// fails (network trouble, moved URL, TLS issues, …).
	FailureProb float64
	// InitialAgeDays is the embedded copy's age when the simulation
	// starts (a project typically ships with a somewhat stale copy).
	InitialAgeDays int
}

// Config parameterises a simulation run.
type Config struct {
	// Seed drives the Monte Carlo; equal seeds reproduce exactly.
	Seed int64
	// HorizonDays is the simulated duration. Default 1825 (5 years).
	HorizonDays int
	// Trials is the number of Monte Carlo repetitions. Default 100.
	Trials int
}

func (c Config) withDefaults() Config {
	if c.HorizonDays == 0 {
		c.HorizonDays = 5 * 365
	}
	if c.Trials == 0 {
		c.Trials = 100
	}
	return c
}

// Result summarises the effective list age a policy produces, and the
// expected harm when a curve is supplied.
type Result struct {
	Policy Policy
	// MeanAgeDays and MedianAgeDays summarise the day-weighted
	// effective age distribution.
	MeanAgeDays   float64
	MedianAgeDays float64
	// P95AgeDays is its 95th percentile.
	P95AgeDays float64
	// MeanMissingHostnames is the day-averaged harm under the supplied
	// curve (0 when no curve was given).
	MeanMissingHostnames float64
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("%s: mean age %.0fd median %.0fd p95 %.0fd, mean missing hostnames %.0f",
		r.Policy.Name, r.MeanAgeDays, r.MedianAgeDays, r.P95AgeDays, r.MeanMissingHostnames)
}

// Simulate runs the Monte Carlo for one policy. harm may be nil.
func Simulate(cfg Config, p Policy, harm func(ageDays int) int) Result {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(p.Kind)<<32 ^ int64(p.IntervalDays)))

	ages := make([]float64, 0, cfg.HorizonDays*cfg.Trials)
	var harmSum float64
	for trial := 0; trial < cfg.Trials; trial++ {
		age := p.InitialAgeDays
		sinceEvent := 0
		for day := 0; day < cfg.HorizonDays; day++ {
			age++
			sinceEvent++
			if p.Kind != Fixed && p.IntervalDays > 0 && sinceEvent >= p.IntervalDays {
				sinceEvent = 0
				if rng.Float64() >= p.FailureProb {
					age = 0
				}
			}
			ages = append(ages, float64(age))
			if harm != nil {
				harmSum += float64(harm(age))
			}
		}
	}
	sort.Float64s(ages)
	n := len(ages)
	sum := 0.0
	for _, a := range ages {
		sum += a
	}
	res := Result{
		Policy:        p,
		MeanAgeDays:   sum / float64(n),
		MedianAgeDays: ages[n/2],
		P95AgeDays:    ages[n*95/100],
	}
	if harm != nil {
		res.MeanMissingHostnames = harmSum / float64(n)
	}
	return res
}

// DefaultPolicies are the Table 1 archetypes with plausible cadences:
// the paper's fixed projects (bundled copy, median 825 days old and
// ageing), build-updated projects releasing quarterly, user
// applications restarting weekly, server daemons restarting yearly,
// and a daily periodic updater — the recommended practice.
func DefaultPolicies() []Policy {
	return []Policy{
		{Name: "fixed (median project)", Kind: Fixed, InitialAgeDays: 825},
		{Name: "build, quarterly releases", Kind: Build, IntervalDays: 90, FailureProb: 0.05, InitialAgeDays: 90},
		{Name: "restart weekly (user app)", Kind: Restart, IntervalDays: 7, FailureProb: 0.05, InitialAgeDays: 180},
		{Name: "restart yearly (server)", Kind: Restart, IntervalDays: 365, FailureProb: 0.05, InitialAgeDays: 180},
		{Name: "periodic daily", Kind: Periodic, IntervalDays: 1, FailureProb: 0.05},
		{Name: "periodic daily, flaky net", Kind: Periodic, IntervalDays: 1, FailureProb: 0.5},
	}
}

// Compare simulates every policy under one configuration.
func Compare(cfg Config, policies []Policy, harm func(ageDays int) int) []Result {
	out := make([]Result, 0, len(policies))
	for _, p := range policies {
		out = append(out, Simulate(cfg, p, harm))
	}
	return out
}

// CompareParallel is Compare fanned across min(workers, len(policies))
// goroutines. Each policy seeds its own rng from (Seed, Kind,
// IntervalDays) only, so results are bit-identical to Compare whatever
// the scheduling; harm must be safe for concurrent calls (the pipeline's
// harm curve is an immutable table lookup). workers <= 0 selects
// GOMAXPROCS.
func CompareParallel(cfg Config, policies []Policy, harm func(ageDays int) int, workers int) []Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(policies) {
		workers = len(policies)
	}
	out := make([]Result, len(policies))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = Simulate(cfg, policies[i], harm)
			}
		}()
	}
	for i := range policies {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
