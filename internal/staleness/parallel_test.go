package staleness

import (
	"reflect"
	"testing"
)

// TestCompareParallelEqualsCompare: per-policy rng seeding makes the
// parallel fan-out bit-identical to the serial loop for any worker
// count.
func TestCompareParallelEqualsCompare(t *testing.T) {
	cfg := Config{Seed: 7, HorizonDays: 200, Trials: 10}
	harm := func(ageDays int) int { return ageDays / 3 }
	want := Compare(cfg, DefaultPolicies(), harm)
	for _, workers := range []int{0, 1, 2, 16} {
		got := CompareParallel(cfg, DefaultPolicies(), harm, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel results diverge\n got: %+v\nwant: %+v", workers, got, want)
		}
	}
}
