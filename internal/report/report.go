// Package report renders the pipeline's tables and series as aligned
// ASCII tables, CSV, and downsampled time series, so every figure and
// table of the paper can be printed by the pslharm tool and the bench
// harness with consistent formatting.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	// aligns holds 'l' or 'r' per column; defaults to left.
	aligns []byte
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers, aligns: make([]byte, len(headers))}
}

// AlignRight marks columns (by index) as right-aligned.
func (t *Table) AlignRight(cols ...int) *Table {
	for _, c := range cols {
		if c >= 0 && c < len(t.aligns) {
			t.aligns[c] = 'r'
		}
	}
	return t
}

// Row appends a row; values are stringified with %v.
func (t *Table) Row(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = strconv.FormatFloat(x, 'f', 1, 64)
		case time.Time:
			row[i] = x.Format("2006-01-02")
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title + "\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(cell)
			if i < len(t.aligns) && t.aligns[i] == 'r' {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			} else {
				b.WriteString(cell)
				if i < len(cells)-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quoting cells containing
// commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// SeriesPoint is one (x, y) sample of a rendered time series.
type SeriesPoint struct {
	Date  time.Time
	Value float64
}

// Downsample reduces a series to at most n points, keeping the first
// and last and sampling evenly in between — enough to see the shape in
// a terminal.
func Downsample(points []SeriesPoint, n int) []SeriesPoint {
	if n <= 0 || len(points) <= n {
		return points
	}
	out := make([]SeriesPoint, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(points) - 1) / (n - 1)
		out = append(out, points[idx])
	}
	return out
}

// Sparkline renders a series as a one-line unicode sparkline.
func Sparkline(points []SeriesPoint) string {
	if len(points) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := points[0].Value, points[0].Value
	for _, p := range points {
		if p.Value < lo {
			lo = p.Value
		}
		if p.Value > hi {
			hi = p.Value
		}
	}
	var b strings.Builder
	for _, p := range points {
		i := 0
		if hi > lo {
			i = int((p.Value - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[i])
	}
	return b.String()
}

// Series renders a downsampled series as a table of date/value rows
// plus a sparkline, suitable for terminal output of the paper's
// figures.
func Series(title string, points []SeriesPoint, samples int) string {
	ds := Downsample(points, samples)
	t := NewTable(title, "date", "value").AlignRight(1)
	for _, p := range ds {
		t.Row(p.Date, fmt.Sprintf("%.0f", p.Value))
	}
	return t.String() + "shape: " + Sparkline(Downsample(points, 60)) + "\n"
}
