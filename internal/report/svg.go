package report

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// SVGOptions style an SVG chart. The zero value is usable.
type SVGOptions struct {
	// Title is drawn across the top.
	Title string
	// Width and Height of the image; defaults 720x360.
	Width, Height int
	// YLabel annotates the vertical axis.
	YLabel string
	// Color is the polyline stroke; default steel blue.
	Color string
}

func (o SVGOptions) withDefaults() SVGOptions {
	if o.Width == 0 {
		o.Width = 720
	}
	if o.Height == 0 {
		o.Height = 360
	}
	if o.Color == "" {
		o.Color = "#4682b4"
	}
	return o
}

// chart margins.
const (
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 36
	marginBottom = 44
)

// SVGLine renders a time series as a standalone SVG line chart with
// axes and ticks — enough to regenerate the paper's figures as images
// with no dependencies. The output is deterministic.
func SVGLine(w io.Writer, points []SeriesPoint, opts SVGOptions) error {
	opts = opts.withDefaults()
	if len(points) == 0 {
		return fmt.Errorf("report: empty series")
	}

	minX, maxX := points[0].Date, points[len(points)-1].Date
	minY, maxY := points[0].Value, points[0].Value
	for _, p := range points {
		minY = math.Min(minY, p.Value)
		maxY = math.Max(maxY, p.Value)
	}
	if maxY == minY {
		maxY = minY + 1
	}
	spanX := float64(maxX.Sub(minX))
	if spanX == 0 {
		spanX = 1
	}

	plotW := float64(opts.Width - marginLeft - marginRight)
	plotH := float64(opts.Height - marginTop - marginBottom)
	xOf := func(t time.Time) float64 {
		return float64(marginLeft) + plotW*float64(t.Sub(minX))/spanX
	}
	yOf := func(v float64) float64 {
		return float64(marginTop) + plotH*(1-(v-minY)/(maxY-minY))
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Width, opts.Height, opts.Width, opts.Height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if opts.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="22" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
			marginLeft, escapeXML(opts.Title))
	}

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#444"/>`+"\n",
		marginLeft, opts.Height-marginBottom, opts.Width-marginRight, opts.Height-marginBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#444"/>`+"\n",
		marginLeft, marginTop, marginLeft, opts.Height-marginBottom)

	// Y ticks: 5 evenly spaced.
	for i := 0; i <= 4; i++ {
		v := minY + (maxY-minY)*float64(i)/4
		y := yOf(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc" stroke-dasharray="3,3"/>`+"\n",
			marginLeft, y, opts.Width-marginRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, compactNumber(v))
	}
	// X ticks: 6 dates.
	for i := 0; i <= 5; i++ {
		t := minX.Add(time.Duration(float64(maxX.Sub(minX)) * float64(i) / 5))
		x := xOf(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#444"/>`+"\n",
			x, opts.Height-marginBottom, x, opts.Height-marginBottom+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, opts.Height-marginBottom+18, t.Format("2006-01"))
	}
	if opts.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" font-family="sans-serif" font-size="12" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
			(marginTop+opts.Height-marginBottom)/2, (marginTop+opts.Height-marginBottom)/2, escapeXML(opts.YLabel))
	}

	// The series polyline (downsampled to keep files small).
	ds := Downsample(points, 400)
	var poly strings.Builder
	for i, p := range ds {
		if i > 0 {
			poly.WriteByte(' ')
		}
		fmt.Fprintf(&poly, "%.1f,%.1f", xOf(p.Date), yOf(p.Value))
	}
	fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
		poly.String(), opts.Color)
	b.WriteString("</svg>\n")

	_, err := io.WriteString(w, b.String())
	return err
}

// compactNumber renders axis labels like 9.4k or 1.2M.
func compactNumber(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case a >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// escapeXML escapes the characters meaningful in SVG text nodes.
func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
