package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("Demo", "name", "count").AlignRight(1)
	tbl.Row("alpha", 5)
	tbl.Row("b", 12345)
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasSuffix(lines[3], "    5") {
		t.Errorf("right alignment broken: %q", lines[3])
	}
	// Header separator covers both columns.
	if !strings.Contains(lines[2], "-----") {
		t.Errorf("rule line = %q", lines[2])
	}
}

func TestTableFormatsTypes(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.Row(3.14159, time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC))
	out := tbl.String()
	if !strings.Contains(out, "3.1") || !strings.Contains(out, "2022-07-01") {
		t.Errorf("type formatting broken: %q", out)
	}
}

func TestCSV(t *testing.T) {
	tbl := NewTable("", "name", "note")
	tbl.Row("a,b", `say "hi"`)
	csv := tbl.CSV()
	want := "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestDownsample(t *testing.T) {
	var pts []SeriesPoint
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		pts = append(pts, SeriesPoint{Date: base.AddDate(0, 0, i), Value: float64(i)})
	}
	ds := Downsample(pts, 10)
	if len(ds) != 10 {
		t.Fatalf("downsampled to %d, want 10", len(ds))
	}
	if ds[0] != pts[0] || ds[9] != pts[99] {
		t.Error("downsample must keep endpoints")
	}
	// No-op cases.
	if got := Downsample(pts, 200); len(got) != 100 {
		t.Error("downsample should not upsample")
	}
	if got := Downsample(pts, 0); len(got) != 100 {
		t.Error("n<=0 should be a no-op")
	}
}

func TestSparkline(t *testing.T) {
	pts := []SeriesPoint{{Value: 0}, {Value: 5}, {Value: 10}}
	s := Sparkline(pts)
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("sparkline runes = %d", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Errorf("sparkline = %q", s)
	}
	// Constant series renders the lowest block, not a panic.
	flat := Sparkline([]SeriesPoint{{Value: 3}, {Value: 3}})
	if []rune(flat)[0] != '▁' {
		t.Errorf("flat sparkline = %q", flat)
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
}

func TestSeries(t *testing.T) {
	base := time.Date(2007, 3, 22, 0, 0, 0, 0, time.UTC)
	var pts []SeriesPoint
	for i := 0; i < 50; i++ {
		pts = append(pts, SeriesPoint{Date: base.AddDate(0, 0, i*30), Value: float64(i * i)})
	}
	out := Series("Fig X", pts, 8)
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "shape: ") {
		t.Errorf("series output missing parts: %q", out)
	}
	if !strings.Contains(out, "2007-03-22") {
		t.Error("series lost first date")
	}
}
