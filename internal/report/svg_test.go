package report

import (
	"strings"
	"testing"
	"time"
)

func seriesFixture(n int) []SeriesPoint {
	base := time.Date(2007, 3, 22, 0, 0, 0, 0, time.UTC)
	pts := make([]SeriesPoint, n)
	for i := range pts {
		pts[i] = SeriesPoint{Date: base.AddDate(0, 0, i*5), Value: float64(2447 + i*6)}
	}
	return pts
}

func TestSVGLineWellFormed(t *testing.T) {
	var b strings.Builder
	err := SVGLine(&b, seriesFixture(1142), SVGOptions{Title: "Figure 2", YLabel: "rules"})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "Figure 2", "rules", "2007-0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<svg") != 1 || strings.Count(out, "</svg>") != 1 {
		t.Error("malformed document structure")
	}
}

func TestSVGLineDeterministic(t *testing.T) {
	var a, b strings.Builder
	pts := seriesFixture(100)
	if err := SVGLine(&a, pts, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := SVGLine(&b, pts, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("SVG output not deterministic")
	}
}

func TestSVGLineEdgeCases(t *testing.T) {
	var b strings.Builder
	if err := SVGLine(&b, nil, SVGOptions{}); err == nil {
		t.Error("empty series should error")
	}
	// Constant series must not divide by zero.
	flat := []SeriesPoint{
		{Date: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC), Value: 5},
		{Date: time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC), Value: 5},
	}
	b.Reset()
	if err := SVGLine(&b, flat, SVGOptions{}); err != nil {
		t.Errorf("flat series: %v", err)
	}
	// Single point.
	b.Reset()
	if err := SVGLine(&b, flat[:1], SVGOptions{}); err != nil {
		t.Errorf("single point: %v", err)
	}
}

func TestSVGEscapesTitle(t *testing.T) {
	var b strings.Builder
	if err := SVGLine(&b, seriesFixture(3), SVGOptions{Title: `a <b> & "c"`}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "a &lt;b&gt; &amp; &quot;c&quot;") {
		t.Error("title not escaped")
	}
}

func TestCompactNumber(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{{500, "500"}, {9368, "9.4k"}, {1547079, "1.5M"}, {0, "0"}}
	for _, c := range cases {
		if got := compactNumber(c.in); got != c.want {
			t.Errorf("compactNumber(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
