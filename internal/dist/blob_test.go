package dist

import (
	"context"
	"errors"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/psl"
	"repro/internal/resilience"
	"repro/internal/serve"
)

// blobList is a small list with every rule flavour, for codec tests.
func blobList() *psl.List {
	return psl.MustParse(`
// ===BEGIN ICANN DOMAINS===
com
co.uk
*.ck
!www.ck
// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===
github.io
// ===END PRIVATE DOMAINS===
`)
}

func TestMatcherBlobRoundTrip(t *testing.T) {
	l := blobList()
	fp := l.Fingerprint()
	pm := psl.NewPackedMatcher(l)
	env := EncodeMatcherBlob(7, fp, pm.Marshal())

	b, err := DecodeMatcherBlob(env)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if b.Seq != 7 || b.FP != fp {
		t.Fatalf("decoded header seq=%d fp=%s, want 7/%s", b.Seq, b.FP, fp)
	}
	got, err := UnpackMatcherBlob(env, 7, fp)
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	for _, host := range []string{"a.b.com", "x.co.uk", "any.ck", "www.ck", "u.github.io", "unlisted.zone"} {
		if w, g := pm.Match(host), got.Match(host); w != g {
			t.Errorf("Match(%q): unpacked %+v, compiled %+v", host, g, w)
		}
	}
	if got.RulesFingerprint() != fp {
		t.Errorf("unpacked matcher fingerprint diverged")
	}
}

// TestMatcherBlobRejections walks the verification chain link by link:
// every way a blob can be wrong must surface as a typed error, and the
// one subtle case — a structurally valid matcher for the WRONG rules
// inside a correctly checksummed envelope — must be caught by the
// recomputed rules fingerprint.
func TestMatcherBlobRejections(t *testing.T) {
	l := blobList()
	fp := l.Fingerprint()
	packed := psl.NewPackedMatcher(l).Marshal()
	env := EncodeMatcherBlob(7, fp, packed)

	if _, err := UnpackMatcherBlob(env, 8, fp); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong seq: %v, want ErrCorrupt", err)
	}
	other := psl.MustParse("net\norg\n")
	if _, err := UnpackMatcherBlob(env, 7, other.Fingerprint()); !errors.Is(err, ErrFingerprint) {
		t.Errorf("wrong fingerprint: %v, want ErrFingerprint", err)
	}

	// Flip one bit anywhere: the envelope checksum catches it.
	for _, off := range []int{0, 4, 10, len(env) / 2, len(env) - 1} {
		bad := append([]byte(nil), env...)
		bad[off] ^= 0x40
		if _, err := UnpackMatcherBlob(bad, 7, fp); !errors.Is(err, ErrCorrupt) {
			t.Errorf("flipped byte %d: %v, want ErrCorrupt", off, err)
		}
	}
	if _, err := UnpackMatcherBlob(env[:len(env)-5], 7, fp); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated: want ErrCorrupt")
	}

	// A correctly checksummed envelope around a garbage packed region:
	// the structural validator rejects it.
	garbage := EncodeMatcherBlob(7, fp, []byte("PSLP but not really"))
	if _, err := UnpackMatcherBlob(garbage, 7, fp); !errors.Is(err, psl.ErrBadBlob) {
		t.Errorf("garbage packed region: %v, want psl.ErrBadBlob", err)
	}

	// The deep case: a VALID matcher compiled from different rules,
	// wrapped in an envelope that promises l's fingerprint. Envelope
	// checksum passes, structural validation passes — only the rules
	// fingerprint cross-check can catch the swap.
	swapped := EncodeMatcherBlob(7, fp, psl.NewPackedMatcher(other).Marshal())
	if _, err := UnpackMatcherBlob(swapped, 7, fp); !errors.Is(err, ErrFingerprint) {
		t.Errorf("swapped matcher: %v, want ErrFingerprint", err)
	}
}

func TestOriginServeBlob(t *testing.T) {
	h := testHist(t, 20)
	o := NewOrigin(h)
	ts := httptest.NewServer(o)
	defer ts.Close()

	status, body, hdr := getBody(t, ts.URL+blobPrefix+"5")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	fp := o.Chain().Fingerprint(5)
	pm, err := UnpackMatcherBlob(body, 5, fp)
	if err != nil {
		t.Fatalf("served blob does not verify: %v", err)
	}
	if pm.Len() != h.ListAt(5).Len() {
		t.Fatalf("blob matcher has %d rules, version has %d", pm.Len(), h.ListAt(5).Len())
	}
	if want := `"` + fp + `"`; hdr.Get("ETag") != want {
		t.Fatalf("ETag %q, want %q", hdr.Get("ETag"), want)
	}

	// Conditional re-fetch short-circuits; the render cache means the
	// second full fetch compiles nothing new.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+blobPrefix+"5", nil)
	req.Header.Set("If-None-Match", hdr.Get("ETag"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional status %d, want 304", resp.StatusCode)
	}
	if status, _, _ := getBody(t, ts.URL+blobPrefix+"5"); status != http.StatusOK {
		t.Fatalf("re-fetch status %d", status)
	}
	if got := o.blobRenders.Load(); got != 1 {
		t.Fatalf("blob rendered %d times, want 1", got)
	}

	// Out of range and malformed seqs 404.
	for _, rest := range []string{"99", "-1", "x"} {
		if status, _, _ := getBody(t, ts.URL+blobPrefix+rest); status != http.StatusNotFound {
			t.Errorf("blob/%s: status %d, want 404", rest, status)
		}
	}
}

// TestFollowerZeroCompiles is the tentpole's acceptance test: a
// follower bootstrapped from the origin's compiled blob and fed every
// subsequent version through OnInstall performs ZERO matcher compiles —
// the origin compiles once per version, the follower only verifies.
func TestFollowerZeroCompiles(t *testing.T) {
	h := testHist(t, 30)
	o := NewOrigin(h)
	o.SetHead(5)
	ts := httptest.NewServer(o)
	defer ts.Close()

	opts := fastOpts()
	opts.FetchBlobs = true
	rep := NewReplica(ts.URL, opts)
	ctx := context.Background()

	l, seq, err := rep.Bootstrap(ctx, -1)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	fp := o.Chain().Fingerprint(seq)
	pm := rep.FetchMatcherBlob(ctx, seq, fp)
	if pm == nil {
		t.Fatalf("bootstrap blob fetch failed (hits=%d misses=%d invalid=%d)",
			rep.BlobHits(), rep.BlobMisses(), rep.BlobInvalid())
	}
	svc := serve.NewWith(l, seq, fp, pm, serve.Options{})
	rep.OnInstall = func(l *psl.List, seq int, fp string, m psl.Matcher) {
		svc.SwapVerified(l, seq, fp, m)
	}

	for _, head := range []int{12, 20, 29} {
		o.SetHead(head)
		if err := rep.Poll(ctx); err != nil {
			t.Fatalf("Poll to %d: %v", head, err)
		}
	}
	if cur := svc.Current(); cur.Seq != 29 {
		t.Fatalf("service at seq %d, want 29", cur.Seq)
	}
	compile, blob, reuse := svc.MatcherInstalls()
	if compile != 0 {
		t.Fatalf("follower compiled %d matchers, want 0 (blob=%d reuse=%d)", compile, blob, reuse)
	}
	if blob == 0 {
		t.Fatalf("no blob installs recorded")
	}
	if rep.BlobHits() == 0 || rep.BlobInvalid() != 0 {
		t.Fatalf("blob counters hits=%d invalid=%d", rep.BlobHits(), rep.BlobInvalid())
	}

	// The blob-fed service answers exactly like a locally compiled one.
	ref := serve.New(h.ListAt(29), 29, serve.Options{})
	for _, host := range []string{"a.b.com", "unlisted.zone", "x.co.uk"} {
		got, err1 := svc.Lookup(host)
		want, err2 := ref.Lookup(host)
		if err1 != nil || err2 != nil {
			t.Fatalf("lookup %q: %v / %v", host, err1, err2)
		}
		got.Cached, want.Cached = false, false
		if got != want {
			t.Errorf("host %q: blob-fed %+v != compiled %+v", host, got, want)
		}
	}
}

// TestCorruptBlobFallsBack poisons only the /dist/blob endpoint: rule
// replication must proceed untouched (verified swaps, closed breaker)
// while every poisoned blob is rejected and the service falls back to
// compiling. A corrupt compile shortcut must cost performance, never
// correctness or availability.
func TestCorruptBlobFallsBack(t *testing.T) {
	h := testHist(t, 20)
	o := NewOrigin(h)
	o.SetHead(2)
	poison := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, blobPrefix) {
			rec := httptest.NewRecorder()
			o.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			if len(body) > 10 {
				body[10] ^= 0xff // corrupt inside the envelope
			}
			w.Write(body)
			return
		}
		o.ServeHTTP(w, r)
	}))
	defer poison.Close()

	opts := fastOpts()
	opts.FetchBlobs = true
	rep := NewReplica(poison.URL, opts)
	ctx := context.Background()

	l, seq, err := rep.Bootstrap(ctx, -1)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	fp := o.Chain().Fingerprint(seq)
	if pm := rep.FetchMatcherBlob(ctx, seq, fp); pm != nil {
		t.Fatalf("corrupt bootstrap blob verified")
	}
	svc := serve.NewWith(l, seq, fp, nil, serve.Options{})
	unverified := 0
	rep.OnInstall = func(l *psl.List, seq int, fp string, m psl.Matcher) {
		if fp != o.Chain().Fingerprint(seq) {
			unverified++
		}
		svc.SwapVerified(l, seq, fp, m)
	}

	for _, head := range []int{8, 15} {
		o.SetHead(head)
		if err := rep.Poll(ctx); err != nil {
			t.Fatalf("Poll to %d: %v", head, err)
		}
	}
	if cur := svc.Current(); cur.Seq != 15 {
		t.Fatalf("service at seq %d, want 15", cur.Seq)
	}
	if unverified != 0 {
		t.Fatalf("%d unverified swaps", unverified)
	}
	if rep.BlobInvalid() == 0 || rep.BlobHits() != 0 {
		t.Fatalf("blob counters hits=%d invalid=%d, want 0/>0", rep.BlobHits(), rep.BlobInvalid())
	}
	compile, blob, _ := svc.MatcherInstalls()
	if blob != 0 || compile == 0 {
		t.Fatalf("installs compile=%d blob=%d, want compiles only", compile, blob)
	}
	if rep.Breaker().State() != resilience.BreakerClosed {
		t.Fatalf("corrupt blobs tripped the breaker")
	}
	// And replication itself never recorded a verify failure — the
	// corruption was confined to the optional blob channel.
	if rep.VerifyFailures() != 0 {
		t.Fatalf("rule replication recorded %d verify failures", rep.VerifyFailures())
	}
}

// TestBlobAbsenceIsQuiet points a blob-fetching replica at an upstream
// that predates the endpoint entirely: installs proceed, misses are
// counted, and — critically — the 404s never feed the circuit breaker.
func TestBlobAbsenceIsQuiet(t *testing.T) {
	h := testHist(t, 10)
	o := NewOrigin(h)
	o.SetHead(1)
	// An "old" origin: every blob request 404s before reaching o.
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, blobPrefix) {
			http.NotFound(w, r)
			return
		}
		o.ServeHTTP(w, r)
	}))
	defer old.Close()

	opts := fastOpts()
	opts.FetchBlobs = true
	opts.BreakerThreshold = 2 // would trip almost immediately if misses counted
	rep := NewReplica(old.URL, opts)
	ctx := context.Background()
	l, seq, err := rep.Bootstrap(ctx, -1)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	svc := serve.NewWith(l, seq, o.Chain().Fingerprint(seq), nil, serve.Options{})
	rep.OnInstall = func(l *psl.List, seq int, fp string, m psl.Matcher) {
		svc.SwapVerified(l, seq, fp, m)
	}
	for _, head := range []int{4, 7, 9} {
		o.SetHead(head)
		if err := rep.Poll(ctx); err != nil {
			t.Fatalf("Poll to %d: %v", head, err)
		}
	}
	if cur := svc.Current(); cur.Seq != 9 {
		t.Fatalf("service at seq %d, want 9", cur.Seq)
	}
	if rep.BlobMisses() == 0 {
		t.Fatalf("no blob misses recorded")
	}
	if rep.Breaker().State() != resilience.BreakerClosed {
		t.Fatalf("blob 404s tripped the breaker")
	}
}

// TestMatcherStatePersistence drives the file-backed path: a verified
// blob fetch persists matcher.pslm next to snapshot.pslf, and a
// restarted process reloads both with zero compiles; a stale matcher
// file (older version) is rejected on load, never returned.
func TestMatcherStatePersistence(t *testing.T) {
	h := testHist(t, 10)
	o := NewOrigin(h)
	o.SetHead(3)
	ts := httptest.NewServer(o)
	defer ts.Close()

	dir := t.TempDir()
	opts := fastOpts()
	opts.FetchBlobs = true
	opts.StateDir = dir
	rep := NewReplica(ts.URL, opts)
	ctx := context.Background()
	rep.OnInstall = func(*psl.List, int, string, psl.Matcher) {}
	if _, _, err := rep.Bootstrap(ctx, -1); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	o.SetHead(6)
	if err := rep.Poll(ctx); err != nil {
		t.Fatalf("Poll: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, MatcherFileName)); err != nil {
		t.Fatalf("matcher state not persisted: %v", err)
	}

	// "Restart": restore the snapshot, then reload the matcher against
	// the restored version's identity.
	rep2 := NewReplica(ts.URL, opts)
	l, seq, err := rep2.RestoreState()
	if err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if seq != 6 {
		t.Fatalf("restored seq %d, want 6", seq)
	}
	pm, err := LoadMatcherBlob(dir, seq, l.Fingerprint())
	if err != nil {
		t.Fatalf("LoadMatcherBlob: %v", err)
	}
	svc := serve.NewWith(l, seq, l.Fingerprint(), pm, serve.Options{})
	if compile, blob, _ := svc.MatcherInstalls(); compile != 0 || blob != 1 {
		t.Fatalf("restart installs compile=%d blob=%d, want 0/1", compile, blob)
	}

	// A matcher file for the wrong version must fail verification.
	if _, err := LoadMatcherBlob(dir, 5, o.Chain().Fingerprint(5)); err == nil {
		t.Fatalf("stale matcher blob verified against the wrong version")
	}
	// Missing file surfaces as fs.ErrNotExist.
	if _, err := LoadMatcherBlob(t.TempDir(), 6, l.Fingerprint()); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing matcher file: %v, want fs.ErrNotExist", err)
	}
}

// TestRelayServesBlob checks the fan-out tier: an edge pulling blobs
// from a relay gets the same verified compile shortcut, compiled once
// at the relay, and eviction tracks the retained window.
func TestRelayServesBlob(t *testing.T) {
	h := testHist(t, 20)
	o := NewOrigin(h)
	o.SetHead(5)
	originTS := httptest.NewServer(o)
	defer originTS.Close()

	rel := NewRelay(NewReplica(originTS.URL, fastOpts()), RelayOptions{Retain: 4})
	ctx := context.Background()
	if _, _, err := rel.Replica().Bootstrap(ctx, -1); err != nil {
		t.Fatalf("relay bootstrap: %v", err)
	}
	rel.Seed(rel.Replica().state.list, int(rel.Replica().CurrentSeq()))
	relayTS := httptest.NewServer(rel)
	defer relayTS.Close()

	edgeOpts := fastOpts()
	edgeOpts.FetchBlobs = true
	edge := NewReplica(relayTS.URL, edgeOpts)
	l, seq, err := edge.Bootstrap(ctx, -1)
	if err != nil {
		t.Fatalf("edge bootstrap: %v", err)
	}
	fp := o.Chain().Fingerprint(seq)
	pm := edge.FetchMatcherBlob(ctx, seq, fp)
	if pm == nil {
		t.Fatalf("edge blob fetch from relay failed (misses=%d invalid=%d)", edge.BlobMisses(), edge.BlobInvalid())
	}
	if pm.RulesFingerprint() != fp {
		t.Fatalf("relay blob fingerprint diverged")
	}
	_ = l
	if rel.blobRenders.Load() != 1 {
		t.Fatalf("relay rendered %d blobs, want 1", rel.blobRenders.Load())
	}
	// A second fetch is served from the render cache.
	if again := edge.FetchMatcherBlob(ctx, seq, fp); again == nil || rel.blobRenders.Load() != 1 {
		t.Fatalf("relay re-rendered (renders=%d)", rel.blobRenders.Load())
	}
	// Outside the retained window: 404, counted as a miss at the edge.
	if pm := edge.FetchMatcherBlob(ctx, 0, o.Chain().Fingerprint(0)); pm != nil {
		t.Fatalf("relay served a blob outside its window")
	}
}
