package dist

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadStateRoundTrip(t *testing.T) {
	h := testHist(t, 20)
	want := h.ListAt(7)
	dir := filepath.Join(t.TempDir(), "nested", "state") // SaveState must mkdir
	if err := SaveState(dir, want, 7); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	l, seq, err := LoadState(dir)
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if seq != 7 || l.Fingerprint() != want.Fingerprint() {
		t.Fatalf("round trip: seq %d fp %s, want 7 %s", seq, l.Fingerprint(), want.Fingerprint())
	}
	// No temp debris may survive a clean save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestSaveStateOverwritesAtomically: a second save replaces the first
// and a reader never sees a mix of the two.
func TestSaveStateOverwritesAtomically(t *testing.T) {
	h := testHist(t, 20)
	dir := t.TempDir()
	if err := SaveState(dir, h.ListAt(3), 3); err != nil {
		t.Fatalf("SaveState(3): %v", err)
	}
	if err := SaveState(dir, h.ListAt(15), 15); err != nil {
		t.Fatalf("SaveState(15): %v", err)
	}
	l, seq, err := LoadState(dir)
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if seq != 15 || l.Fingerprint() != h.ListAt(15).Fingerprint() {
		t.Fatalf("loaded seq %d, want the second save (15)", seq)
	}
}

func TestLoadStateMissing(t *testing.T) {
	_, _, err := LoadState(t.TempDir())
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("LoadState on empty dir = %v, want fs.ErrNotExist", err)
	}
}

// TestLoadStateRejectsCorruption simulates a torn or tampered state
// file: any byte flip must fail the codec checksum, never load.
func TestLoadStateRejectsCorruption(t *testing.T) {
	h := testHist(t, 20)
	dir := t.TempDir()
	if err := SaveState(dir, h.ListAt(5), 5); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	path := filepath.Join(dir, StateFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, len(data) / 2, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadState(dir); err == nil {
			t.Fatalf("corrupt state (byte %d flipped) loaded successfully", off)
		}
	}
	// A truncated file (torn write without the rename barrier) fails too.
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadState(dir); err == nil {
		t.Fatal("truncated state file loaded successfully")
	}
}
