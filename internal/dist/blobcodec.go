package dist

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/psl"
)

// matcherMagic tags a compiled-matcher blob ("PSLM"): a marshalled
// psl.PackedMatcher wrapped in the dist envelope so it can ride the
// same verified distribution channel as rule snapshots.
const matcherMagic = 0x50534c4d

// MatcherBlob is the decoded form of a compiled-matcher blob: the
// packed matcher bytes for one version, pinned to that version's seq
// and rule-set fingerprint.
type MatcherBlob struct {
	Seq    int
	FP     string
	Packed []byte
}

// EncodeMatcherBlob wraps a marshalled PackedMatcher in the dist
// envelope:
//
//	uint32 magic "PSLM" | byte version | uvarint seq | 32B fingerprint
//	| uvarint len + packed matcher bytes | 32B SHA-256 trailer
//
// The fingerprint is the rule-set fingerprint of the version the
// matcher was compiled from — the same value the manifest and full/patch
// chain promise for seq — so a consumer that has already verified the
// rules for (seq, fp) can verify this blob belongs to them without
// recompiling anything.
func EncodeMatcherBlob(seq int, fp string, packed []byte) []byte {
	buf := make([]byte, 0, len(packed)+64)
	buf = binary.BigEndian.AppendUint32(buf, matcherMagic)
	buf = append(buf, codecVersion)
	buf = binary.AppendUvarint(buf, uint64(seq))
	buf = appendFP(buf, fp)
	buf = binary.AppendUvarint(buf, uint64(len(packed)))
	buf = append(buf, packed...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// DecodeMatcherBlob parses and validates the envelope (checksum first,
// then field bounds). It does not interpret the packed bytes — that is
// UnpackMatcherBlob's job. Errors wrap ErrCorrupt.
func DecodeMatcherBlob(data []byte) (*MatcherBlob, error) {
	body, err := checkEnvelope(data, matcherMagic, "matcher")
	if err != nil {
		return nil, err
	}
	d := &decoder{data: body}
	b := &MatcherBlob{}
	b.Seq = d.seq("seq")
	b.FP = d.fp("fingerprint")
	n := d.uvarint("packed length")
	if d.err == nil && n > maxBlobBytes {
		d.fail("packed length", fmt.Errorf("%d bytes out of range", n))
	}
	b.Packed = d.take(int(n), "packed matcher")
	if d.err == nil && d.off != len(d.data) {
		d.fail("trailing junk", fmt.Errorf("%d bytes after last field", len(d.data)-d.off))
	}
	if d.err != nil {
		return nil, d.err
	}
	return b, nil
}

// UnpackMatcherBlob decodes a compiled-matcher blob and verifies the
// whole trust chain against the expected (seq, fp): envelope checksum,
// sequence match, pinned fingerprint match, exhaustive structural
// validation of the packed matcher, and finally a recomputed rule-set
// fingerprint of the compiled rules themselves. A blob that passes is
// exactly the compiled form of the rule set the fingerprint chain
// promised for seq — safe to serve without ever materialising or
// recompiling the rules. Failures wrap ErrCorrupt, ErrFingerprint, or
// psl.ErrBadBlob; callers treat any of them as "compile locally
// instead", never as a replication failure.
func UnpackMatcherBlob(data []byte, seq int, fp string) (*psl.PackedMatcher, error) {
	b, err := DecodeMatcherBlob(data)
	if err != nil {
		return nil, err
	}
	if b.Seq != seq {
		return nil, fmt.Errorf("%w: matcher blob is version %d, expected %d", ErrCorrupt, b.Seq, seq)
	}
	if b.FP != fp {
		return nil, fmt.Errorf("%w: matcher blob pinned to %.12s…, expected %.12s… (seq %d)",
			ErrFingerprint, b.FP, fp, seq)
	}
	pm, err := psl.UnmarshalPackedMatcher(b.Packed)
	if err != nil {
		return nil, err
	}
	if got := pm.RulesFingerprint(); got != fp {
		return nil, fmt.Errorf("%w: matcher rules digest to %.12s…, blob promises %.12s… (seq %d)",
			ErrFingerprint, got, fp, seq)
	}
	return pm, nil
}
