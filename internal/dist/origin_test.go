package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/history"
	"repro/internal/obs"
)

// testHistory is shared across origin/replica tests; generating even a
// small history is not free, so build each size once.
var (
	histMu    sync.Mutex
	histCache = map[int]*history.History{}
)

func testHist(t testing.TB, versions int) *history.History {
	t.Helper()
	histMu.Lock()
	defer histMu.Unlock()
	h, ok := histCache[versions]
	if !ok {
		h = history.Generate(history.Config{Versions: versions})
		histCache[versions] = h
	}
	return h
}

func getBody(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, body, resp.Header
}

func TestOriginManifest(t *testing.T) {
	h := testHist(t, 50)
	o := NewOrigin(h)
	ts := httptest.NewServer(o)
	defer ts.Close()

	status, body, hdr := getBody(t, ts.URL+ManifestPath)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if m.Seq != 49 || m.Rules != h.Meta(49).Rules || m.Version != h.Meta(49).Label() {
		t.Fatalf("manifest %+v", m)
	}
	if m.Fingerprint != o.Chain().Fingerprint(49) {
		t.Fatalf("manifest fingerprint mismatch")
	}

	// Conditional request short-circuits on the ETag.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+ManifestPath, nil)
	req.Header.Set("If-None-Match", hdr.Get("ETag"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("conditional GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional status %d, want 304", resp.StatusCode)
	}

	// Rolling the head back changes the manifest and its ETag.
	o.SetHead(10)
	status, body, hdr2 := getBody(t, ts.URL+ManifestPath)
	if status != http.StatusOK {
		t.Fatalf("status after SetHead %d", status)
	}
	if err := json.Unmarshal(body, &m); err != nil || m.Seq != 10 {
		t.Fatalf("manifest after SetHead: %+v err %v", m, err)
	}
	if hdr2.Get("ETag") == hdr.Get("ETag") {
		t.Fatalf("ETag unchanged after head change")
	}
}

func TestOriginFullBlob(t *testing.T) {
	h := testHist(t, 50)
	o := NewOrigin(h)
	ts := httptest.NewServer(o)
	defer ts.Close()

	status, body, _ := getBody(t, ts.URL+fullPrefix+"17")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	f, err := DecodeFull(body)
	if err != nil {
		t.Fatalf("DecodeFull: %v", err)
	}
	l, err := f.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if want := h.ListAt(17); l.Serialize() != want.Serialize() {
		t.Fatalf("full blob materialises a different list")
	}
}

func TestOriginPatchEndpoint(t *testing.T) {
	h := testHist(t, 50)
	o := NewOrigin(h)
	ts := httptest.NewServer(o)
	defer ts.Close()

	status, body, _ := getBody(t, ts.URL+patchPrefix+"5/30")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	p, err := DecodePatch(body)
	if err != nil {
		t.Fatalf("DecodePatch: %v", err)
	}
	applied, err := p.Apply(h.ListAt(5), "")
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if want := h.ListAt(30); applied.Serialize() != want.Serialize() {
		t.Fatalf("patched list differs from ListAt(30)")
	}
}

func TestOriginRejectsBadPaths(t *testing.T) {
	h := testHist(t, 50)
	o := NewOrigin(h)
	o.SetHead(20)
	ts := httptest.NewServer(o)
	defer ts.Close()

	for _, path := range []string{
		Prefix,                  // bare prefix
		Prefix + "nope",         // unknown endpoint
		fullPrefix + "x",        // non-numeric
		fullPrefix + "21",       // beyond head
		fullPrefix + "-1",       // negative
		patchPrefix + "5",       // missing "to"
		patchPrefix + "5/5",     // empty range
		patchPrefix + "9/8",     // backwards
		patchPrefix + "5/21",    // beyond head
		patchPrefix + "-1/3",    // negative
		patchPrefix + "a/b",     // non-numeric
		patchPrefix + "5/6/7",   // extra segment
		Prefix + "patch/5/6%20", // junk suffix
	} {
		status, _, _ := getBody(t, ts.URL+path)
		if status != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, status)
		}
	}
}

// TestOriginRejectsEqualPatchEndpoints pins the empty-range rule on its
// own: a from == to patch request is meaningless (the codec refuses to
// decode such a patch, see TestDecodePatch rejections) and the origin
// must 404 it at every seq rather than render a zero-op blob.
func TestOriginRejectsEqualPatchEndpoints(t *testing.T) {
	h := testHist(t, 50)
	o := NewOrigin(h)
	o.SetHead(30)
	ts := httptest.NewServer(o)
	defer ts.Close()

	for _, seq := range []int{0, 1, 15, 30} {
		path := fmt.Sprintf("%s%d/%d", patchPrefix, seq, seq)
		status, _, _ := getBody(t, ts.URL+path)
		if status != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404 for an empty range", path, status)
		}
	}
}

func TestOriginMetricsAndRenderCache(t *testing.T) {
	h := testHist(t, 50)
	o := NewOrigin(h)
	reg := obs.NewRegistry()
	o.RegisterMetrics(reg)
	ts := httptest.NewServer(o)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		getBody(t, ts.URL+patchPrefix+"0/49")
		getBody(t, ts.URL+fullPrefix+"49")
	}
	getBody(t, ts.URL+ManifestPath)

	if got := o.patchRenders.Load(); got != 1 {
		t.Errorf("patch renders = %d, want 1 (cache must absorb repeats)", got)
	}
	if got := o.fullRenders.Load(); got != 1 {
		t.Errorf("full renders = %d, want 1", got)
	}
	if got := o.patchReqs.Load(); got != 3 {
		t.Errorf("patch requests = %d, want 3", got)
	}

	exp := reg.Render()
	for _, fam := range []string{
		"psl_dist_origin_requests_total",
		"psl_dist_origin_bytes_total",
		"psl_dist_origin_renders_total",
		"psl_dist_origin_not_modified_total",
		"psl_dist_origin_head_seq",
	} {
		if !strings.Contains(exp, fam) {
			t.Errorf("exposition missing %s", fam)
		}
	}
	if _, err := obs.ValidateExposition(strings.NewReader(exp)); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
}
