package dist

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/psl"
)

// HTTP paths the origin serves under Prefix.
const (
	// Prefix is the mount point for the distribution API.
	Prefix = "/dist/"
	// ManifestPath describes the head version.
	ManifestPath = Prefix + "manifest"
	// fullPrefix + "{seq}" serves a full snapshot blob.
	fullPrefix = Prefix + "full/"
	// patchPrefix + "{from}/{to}" serves a delta blob.
	patchPrefix = Prefix + "patch/"
	// blobPrefix + "{seq}" serves a compiled matcher blob ("PSLM").
	blobPrefix = Prefix + "blob/"
)

// Manifest is the origin's head advertisement: which version replicas
// should converge to, and how far back patches reach.
type Manifest struct {
	Seq         int       `json:"seq"`
	Fingerprint string    `json:"fingerprint"`
	Version     string    `json:"version"`
	Date        time.Time `json:"date"`
	Rules       int       `json:"rules"`
	// MinSeq is the oldest version patches can start from: 0 at an
	// origin (every version stays available), the bottom of the
	// retained snapshot window at a relay. A replica whose current seq
	// is below MinSeq cannot patch forward from this upstream and must
	// full-sync.
	MinSeq int `json:"min_seq"`
	// Depth is the server's distance from the authoritative origin: 0
	// at the origin itself, 1 at a relay following it, and so on down
	// an arbitrarily deep fan-out tree.
	Depth int `json:"depth"`
	// PublishedAt is when the origin advertised this head, stamped at
	// SetHead time and carried down the fan-out tree unchanged, so an
	// edge's propagation journal can anchor a seq's timeline at the
	// moment the version was born rather than when the edge first heard
	// of it. Zero when unknown (a pre-stamp upstream, or a relay that
	// never saw the head's manifest).
	PublishedAt time.Time `json:"published_at,omitempty"`
}

// Origin publishes a history's versions for replication:
//
//	GET /dist/manifest           -> JSON Manifest of the head version
//	GET /dist/full/{seq}         -> full snapshot blob ("PSLF")
//	GET /dist/patch/{from}/{to}  -> delta blob ("PSLD"), from < to <= head
//
// Manifest and full responses carry strong ETags (the rule-set
// fingerprint) and honour If-None-Match. The head is mutable via
// SetHead so tests and operators can roll the published version
// forward; blobs for every version stay available, which is what lets
// a replica catch up through versions the origin has already passed.
//
// Rendering a blob replays event history, so each one is rendered once
// and cached (the same discipline as fetch.Server's render cache).
type Origin struct {
	h     *history.History
	chain *Chain
	head  atomic.Int64
	// pub stamps when the current head was published; read back into
	// the manifest so downstream journals can anchor timelines at the
	// origin's clock.
	pub     atomic.Pointer[headStamp]
	journal *obs.Journal
	// pubMu serializes Publish: validate-at-tip, append to history,
	// extend the chain and advertise must happen as one unit.
	pubMu sync.Mutex

	patches sync.Map // uint64(from)<<32|to -> *renderedBlob
	fulls   sync.Map // int -> *renderedBlob
	blobs   sync.Map // int -> *renderedBlob (compiled matchers)

	manifestReqs, fullReqs, patchReqs obs.Counter
	patchBytes, fullBytes             obs.Counter
	patchRenders, fullRenders         obs.Counter
	notModified                       obs.Counter
	blobReqs, blobBytes, blobRenders  obs.Counter
}

type renderedBlob struct {
	once sync.Once
	data []byte
	etag string
}

// headStamp records when a head seq was published.
type headStamp struct {
	seq int
	at  time.Time
}

// NewOrigin builds an origin over h, initially publishing the newest
// version. Building the fingerprint chain walks the whole event history
// once (~1s for the full corpus).
func NewOrigin(h *history.History) *Origin {
	o := &Origin{h: h, chain: NewChain(h)}
	o.head.Store(int64(h.Len() - 1))
	o.pub.Store(&headStamp{seq: h.Len() - 1, at: time.Now()})
	return o
}

// SetJournal attaches a propagation journal: SetHead records the
// "published" stage and blob renders record "blob_rendered", keyed by
// seq. The current head is journalled immediately so an origin that
// never rolls forward still exposes a timeline. Call before serving.
func (o *Origin) SetJournal(j *obs.Journal) {
	o.journal = j
	if st := o.pub.Load(); st != nil {
		j.RecordAt(st.seq, obs.StagePublished, st.at)
	}
}

// Chain exposes the precomputed fingerprint table.
func (o *Origin) Chain() *Chain { return o.chain }

// History exposes the version corpus the origin serves. The submission
// pipeline reads the tip through it and publishes back via Publish.
func (o *Origin) History() *history.History { return o.h }

// Head reports the currently published version.
func (o *Origin) Head() int { return int(o.head.Load()) }

// SetHead changes the published head version, simulating the origin
// receiving an upstream update. Safe to call while requests are in
// flight.
func (o *Origin) SetHead(seq int) {
	if seq < 0 || seq >= o.h.Len() {
		panic(fmt.Sprintf("dist: head %d out of range [0,%d)", seq, o.h.Len()))
	}
	now := time.Now()
	o.pub.Store(&headStamp{seq: seq, at: now})
	o.head.Store(int64(seq))
	o.journal.RecordAt(seq, obs.StagePublished, now)
}

// Publish appends a brand-new version to the origin's history carrying
// the given rule delta and advertises it as the head. This is the write
// path's terminal stage: an accepted submission lands here and the
// entire replication plane (relays, followers, fleets) picks it up
// through the ordinary manifest/patch/blob machinery.
//
// The delta is validated against the current tip: every removed rule
// must be present and every added rule absent — except when an added
// rule's key is also being removed in the same delta, which is how a
// section move is encoded (ListAt processes removals before additions
// within one event). A delta that leaves the rule-set fingerprint
// unchanged (fingerprints ignore Section, so a pure section move is
// one) is refused: it would advertise a head whose manifest ETag equals
// the previous one, and conditional pollers would never notice it.
//
// On success the new version's manifest is returned; the history, the
// fingerprint chain and the head advance atomically with respect to
// other Publish calls.
func (o *Origin) Publish(date time.Time, added, removed []psl.Rule) (Manifest, error) {
	o.pubMu.Lock()
	defer o.pubMu.Unlock()
	if len(added) == 0 && len(removed) == 0 {
		return Manifest{}, fmt.Errorf("dist: publish: empty delta")
	}
	tip := o.h.Latest()
	removedKeys := make(map[string]bool, len(removed))
	for _, r := range removed {
		if !tip.Contains(r) {
			return Manifest{}, fmt.Errorf("dist: publish: removed rule %q not present at head", r.String())
		}
		removedKeys[r.String()] = true
	}
	for _, r := range added {
		if tip.Contains(r) && !removedKeys[r.String()] {
			return Manifest{}, fmt.Errorf("dist: publish: added rule %q already present at head", r.String())
		}
	}
	if o.chain.PreviewFingerprint(added, removed) == o.chain.Fingerprint(o.chain.Len()-1) {
		return Manifest{}, fmt.Errorf("dist: publish: delta does not change the rule-set fingerprint")
	}
	meta := o.h.Append(date, added, removed)
	o.chain.AppendEvent(o.h.Events()[meta.Seq])
	o.SetHead(meta.Seq)
	return o.Manifest(), nil
}

// Manifest describes the current head.
func (o *Origin) Manifest() Manifest {
	head := o.Head()
	meta := o.h.Meta(head)
	m := Manifest{
		Seq:         head,
		Fingerprint: o.chain.Fingerprint(head),
		Version:     meta.Label(),
		Date:        meta.Date.UTC(),
		Rules:       meta.Rules,
		MinSeq:      0,
	}
	// A SetHead racing this read can leave the stamp one store behind;
	// publish time is advisory, so the manifest simply omits it then.
	if st := o.pub.Load(); st != nil && st.seq == head {
		m.PublishedAt = st.at.UTC()
	}
	return m
}

// RegisterMetrics attaches the origin's metric families to a registry.
func (o *Origin) RegisterMetrics(r *obs.Registry) {
	r.MustRegister("psl_dist_origin_requests_total", "Distribution requests received, by endpoint.",
		obs.Labels{{"endpoint", "manifest"}}, &o.manifestReqs)
	r.MustRegister("psl_dist_origin_requests_total", "Distribution requests received, by endpoint.",
		obs.Labels{{"endpoint", "full"}}, &o.fullReqs)
	r.MustRegister("psl_dist_origin_requests_total", "Distribution requests received, by endpoint.",
		obs.Labels{{"endpoint", "patch"}}, &o.patchReqs)
	r.MustRegister("psl_dist_origin_bytes_total", "Blob bytes served, by transfer kind.",
		obs.Labels{{"kind", "patch"}}, &o.patchBytes)
	r.MustRegister("psl_dist_origin_bytes_total", "Blob bytes served, by transfer kind.",
		obs.Labels{{"kind", "full"}}, &o.fullBytes)
	r.MustRegister("psl_dist_origin_renders_total", "Blobs rendered into the cache, by kind.",
		obs.Labels{{"kind", "patch"}}, &o.patchRenders)
	r.MustRegister("psl_dist_origin_renders_total", "Blobs rendered into the cache, by kind.",
		obs.Labels{{"kind", "full"}}, &o.fullRenders)
	r.MustRegister("psl_dist_origin_not_modified_total", "Conditional requests answered 304 Not Modified.",
		nil, &o.notModified)
	r.MustRegister("psl_dist_blob_requests_total", "Compiled matcher blob requests received.",
		nil, &o.blobReqs)
	r.MustRegister("psl_dist_blob_bytes_total", "Compiled matcher blob bytes served.",
		nil, &o.blobBytes)
	r.MustRegister("psl_dist_blob_renders_total", "Compiled matcher blobs rendered into the cache.",
		nil, &o.blobRenders)
	r.MustRegister("psl_dist_origin_head_seq", "Version sequence currently published as head.",
		nil, obs.GaugeFunc(func() float64 { return float64(o.Head()) }))
}

// ServeHTTP implements http.Handler for paths under Prefix.
func (o *Origin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == ManifestPath:
		o.serveManifest(w, r)
	case strings.HasPrefix(path, fullPrefix):
		o.serveFull(w, r, strings.TrimPrefix(path, fullPrefix))
	case strings.HasPrefix(path, patchPrefix):
		o.servePatch(w, r, strings.TrimPrefix(path, patchPrefix))
	case strings.HasPrefix(path, blobPrefix):
		o.serveBlob(w, r, strings.TrimPrefix(path, blobPrefix))
	default:
		http.NotFound(w, r)
	}
}

func (o *Origin) serveManifest(w http.ResponseWriter, r *http.Request) {
	o.manifestReqs.Add(1)
	m := o.Manifest()
	etag := `"` + m.Fingerprint + `"`
	if r.Header.Get("If-None-Match") == etag {
		o.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", etag)
	_, _ = w.Write(EncodeManifest(m))
}

func (o *Origin) serveFull(w http.ResponseWriter, r *http.Request, rest string) {
	o.fullReqs.Add(1)
	seq, err := strconv.Atoi(rest)
	if err != nil || seq < 0 || seq > o.Head() {
		http.NotFound(w, r)
		return
	}
	v, _ := o.fulls.LoadOrStore(seq, &renderedBlob{})
	rb := v.(*renderedBlob)
	rb.once.Do(func() {
		rb.data = EncodeFull(o.h.ListAt(seq), seq)
		rb.etag = `"` + o.chain.Fingerprint(seq) + `"`
		o.fullRenders.Add(1)
		o.journal.Record(seq, obs.StageBlobRendered)
	})
	if r.Header.Get("If-None-Match") == rb.etag {
		o.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", rb.etag)
	n, _ := w.Write(rb.data)
	o.fullBytes.Add(uint64(n))
}

// serveBlob answers /dist/blob/{seq} with the compiled matcher for that
// version, wrapped in the "PSLM" envelope. Compiling is the expensive
// step patch replication exists to amortise, so each version is
// compiled and marshalled exactly once and the rendered blob cached —
// the origin pays one compile per version however many replicas pull
// it, and every replica that trusts the blob pays zero.
func (o *Origin) serveBlob(w http.ResponseWriter, r *http.Request, rest string) {
	o.blobReqs.Add(1)
	seq, err := strconv.Atoi(rest)
	if err != nil || seq < 0 || seq > o.Head() {
		http.NotFound(w, r)
		return
	}
	v, _ := o.blobs.LoadOrStore(seq, &renderedBlob{})
	rb := v.(*renderedBlob)
	rb.once.Do(func() {
		fp := o.chain.Fingerprint(seq)
		pm := psl.NewPackedMatcher(o.h.ListAt(seq))
		rb.data = EncodeMatcherBlob(seq, fp, pm.Marshal())
		rb.etag = `"` + fp + `"`
		o.blobRenders.Add(1)
		o.journal.Record(seq, obs.StageBlobRendered)
	})
	if r.Header.Get("If-None-Match") == rb.etag {
		o.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", rb.etag)
	n, _ := w.Write(rb.data)
	o.blobBytes.Add(uint64(n))
}

func (o *Origin) servePatch(w http.ResponseWriter, r *http.Request, rest string) {
	o.patchReqs.Add(1)
	fromS, toS, ok := strings.Cut(rest, "/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	from, err1 := strconv.Atoi(fromS)
	to, err2 := strconv.Atoi(toS)
	if err1 != nil || err2 != nil || from < 0 || from >= to || to > o.Head() {
		http.NotFound(w, r)
		return
	}
	key := uint64(from)<<32 | uint64(to)
	v, _ := o.patches.LoadOrStore(key, &renderedBlob{})
	rb := v.(*renderedBlob)
	rb.once.Do(func() {
		rb.data = o.chain.Patch(from, to).Encode()
		o.patchRenders.Add(1)
		o.journal.Record(to, obs.StageBlobRendered)
	})
	w.Header().Set("Content-Type", "application/octet-stream")
	n, _ := w.Write(rb.data)
	o.patchBytes.Add(uint64(n))
}
