// Package dist distributes PSL snapshots between processes: a compact
// checksummed binary patch codec over psl.DiffLists deltas, an HTTP
// origin serving manifests, patches and full snapshot blobs, and a
// polling replica that applies verified patch chains and hot-swaps the
// result into a serving process.
//
// The paper's §5 harm mechanism is consumers running years-stale lists
// because shipping whole lists to every deployment is costly; dist is
// the cheap, verifiable update channel that removes that excuse. Every
// blob is covered by a SHA-256 trailer, and every patch names the exact
// source and target rule-set fingerprints, so a replica either ends up
// with the byte-exact target version or knows it didn't — it never
// silently serves a divergent list. DESIGN.md §11 documents the wire
// format and verification rules.
package dist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/psl"
)

// Blob type tags. Distinct from the PackedMatcher magic ("PSLP") so a
// blob is never confused across codecs.
const (
	patchMagic   = 0x50534c44 // "PSLD": delta patch
	fullMagic    = 0x50534c46 // "PSLF": full snapshot
	codecVersion = 1

	// maxRuleLen bounds one encoded suffix; the longest real PSL rule is
	// well under 100 bytes.
	maxRuleLen = 4096
	// maxRuleCount bounds any rule-list length in a blob, a sanity cap
	// far above the ~10k-rule list.
	maxRuleCount = 1 << 22
)

// ErrCorrupt is wrapped by all decode failures: bad magic, checksum
// mismatch, truncation, trailing junk, or malformed rules.
var ErrCorrupt = errors.New("dist: corrupt blob")

// ErrFingerprint is wrapped when a patch's source fingerprint doesn't
// match the list it is applied to, or a materialised result doesn't
// match the blob's target fingerprint.
var ErrFingerprint = errors.New("dist: fingerprint mismatch")

// Patch is the decoded form of a delta blob: the rule changes taking
// the list at FromSeq (fingerprint FromFP) to the list at ToSeq
// (fingerprint ToFP), plus the target version's metadata.
type Patch struct {
	FromSeq, ToSeq int
	// FromFP and ToFP are hex SHA-256 rule-set fingerprints
	// (psl.List.Fingerprint) pinning the exact source and target.
	FromFP, ToFP string
	// ToVersion and ToDate are stamped onto the applied result so a
	// replica-materialised list is indistinguishable from a locally
	// materialised one.
	ToVersion string
	ToDate    time.Time
	// Removed, Added, and Moved are the delta, in psl.CompareRules
	// order. Moved entries carry the rule's new Section.
	Removed []psl.Rule
	Added   []psl.Rule
	Moved   []psl.Rule
}

// BuildPatch computes the patch taking old (at fromSeq) to new (at
// toSeq), carrying new's metadata.
func BuildPatch(old, new *psl.List, fromSeq, toSeq int) *Patch {
	d := psl.DiffLists(old, new)
	return &Patch{
		FromSeq:   fromSeq,
		ToSeq:     toSeq,
		FromFP:    old.Fingerprint(),
		ToFP:      new.Fingerprint(),
		ToVersion: new.Version,
		ToDate:    new.Date,
		Removed:   d.Removed,
		Added:     d.Added,
		Moved:     d.Moved,
	}
}

// Encode serializes the patch:
//
//	uint32 magic "PSLD" | byte version | uvarint fromSeq | uvarint toSeq
//	| 32B fromFP | 32B toFP | uvarint toDate unix-nanos (0 = unset)
//	| uvarint len + toVersion | rules(removed) | rules(added)
//	| rules(moved) | 32B SHA-256 of everything before it
//
// where rules() is a uvarint count followed by per-rule encodings (one
// kind byte packing wildcard/exception flags and the section, then a
// length-prefixed suffix). All integers are unsigned varints; the two
// fixed-width exceptions are the magic and the digests.
func (p *Patch) Encode() []byte {
	buf := make([]byte, 0, 512)
	buf = binary.BigEndian.AppendUint32(buf, patchMagic)
	buf = append(buf, codecVersion)
	buf = binary.AppendUvarint(buf, uint64(p.FromSeq))
	buf = binary.AppendUvarint(buf, uint64(p.ToSeq))
	buf = appendFP(buf, p.FromFP)
	buf = appendFP(buf, p.ToFP)
	buf = appendTime(buf, p.ToDate)
	buf = binary.AppendUvarint(buf, uint64(len(p.ToVersion)))
	buf = append(buf, p.ToVersion...)
	buf = appendRules(buf, p.Removed)
	buf = appendRules(buf, p.Added)
	buf = appendRules(buf, p.Moved)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// DecodePatch parses and validates a patch blob. The checksum is
// verified first; then every field is bounds-checked and every rule
// round-tripped through psl.ParseRule, so a successful decode implies a
// well-formed patch. Errors wrap ErrCorrupt.
func DecodePatch(data []byte) (*Patch, error) {
	body, err := checkEnvelope(data, patchMagic, "patch")
	if err != nil {
		return nil, err
	}
	d := &decoder{data: body}
	p := &Patch{}
	p.FromSeq = d.seq("from seq")
	p.ToSeq = d.seq("to seq")
	p.FromFP = d.fp("from fingerprint")
	p.ToFP = d.fp("to fingerprint")
	p.ToDate = d.time("to date")
	p.ToVersion = d.str("to version")
	p.Removed = d.rules("removed")
	p.Added = d.rules("added")
	p.Moved = d.rules("moved")
	if d.err == nil && d.off != len(d.data) {
		d.fail("trailing junk", fmt.Errorf("%d bytes after last field", len(d.data)-d.off))
	}
	if d.err == nil && p.FromSeq == p.ToSeq {
		d.fail("seq range", fmt.Errorf("from == to == %d", p.FromSeq))
	}
	if d.err != nil {
		return nil, d.err
	}
	return p, nil
}

// Apply materialises the target version from base. The caller may pass
// base's known fingerprint in baseFP to skip recomputing it; pass ""
// to have Apply compute it. Apply verifies base against FromFP before
// touching anything and the result against ToFP before returning it —
// on any mismatch it returns ErrFingerprint and no list. The dedup
// semantics mirror history.ListAt / psl.NewList: adding an
// already-present key keeps the original rule, removing an absent key
// is a no-op; such harmless extras change nothing and still verify.
func (p *Patch) Apply(base *psl.List, baseFP string) (*psl.List, error) {
	if baseFP == "" {
		baseFP = base.Fingerprint()
	}
	if baseFP != p.FromFP {
		return nil, fmt.Errorf("%w: base is %.12s…, patch expects %.12s… (seq %d)",
			ErrFingerprint, baseFP, p.FromFP, p.FromSeq)
	}
	drop := make(map[string]bool, len(p.Removed))
	for _, r := range p.Removed {
		drop[r.String()] = true
	}
	move := make(map[string]psl.Section, len(p.Moved))
	for _, r := range p.Moved {
		move[r.String()] = r.Section
	}
	rules := make([]psl.Rule, 0, base.Len()+len(p.Added))
	for _, r := range base.Rules() {
		k := r.String()
		if drop[k] {
			continue
		}
		if sec, ok := move[k]; ok {
			r.Section = sec
		}
		rules = append(rules, r)
	}
	rules = append(rules, p.Added...)
	l := psl.NewList(rules) // NewList drops duplicate keys, keeping the first
	l.Date = p.ToDate
	l.Version = p.ToVersion
	if got := l.Fingerprint(); got != p.ToFP {
		return nil, fmt.Errorf("%w: applied result is %.12s…, patch promises %.12s… (seq %d)",
			ErrFingerprint, got, p.ToFP, p.ToSeq)
	}
	return l, nil
}

// Full is the decoded form of a full snapshot blob: one complete list
// version with its metadata and fingerprint.
type Full struct {
	Seq     int
	FP      string
	Version string
	Date    time.Time
	Rules   []psl.Rule
}

// EncodeFull serializes the complete list at seq:
//
//	uint32 magic "PSLF" | byte version | uvarint seq | 32B fingerprint
//	| uvarint date unix-nanos | uvarint len + version string
//	| rules(all) | 32B SHA-256 trailer
//
// Rules are encoded in psl.CompareRules order, so the blob for a
// version is byte-identical however its list was materialised —
// replayed from history or rebuilt by applying patches.
func EncodeFull(l *psl.List, seq int) []byte {
	rules := append([]psl.Rule(nil), l.Rules()...)
	sort.Slice(rules, func(i, j int) bool { return psl.CompareRules(rules[i], rules[j]) < 0 })
	buf := make([]byte, 0, 64+32*len(rules))
	buf = binary.BigEndian.AppendUint32(buf, fullMagic)
	buf = append(buf, codecVersion)
	buf = binary.AppendUvarint(buf, uint64(seq))
	buf = appendFP(buf, psl.FingerprintOfSorted(rules))
	buf = appendTime(buf, l.Date)
	buf = binary.AppendUvarint(buf, uint64(len(l.Version)))
	buf = append(buf, l.Version...)
	buf = appendRules(buf, rules)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// DecodeFull parses and validates a full snapshot blob. Errors wrap
// ErrCorrupt.
func DecodeFull(data []byte) (*Full, error) {
	body, err := checkEnvelope(data, fullMagic, "full")
	if err != nil {
		return nil, err
	}
	d := &decoder{data: body}
	f := &Full{}
	f.Seq = d.seq("seq")
	f.FP = d.fp("fingerprint")
	f.Date = d.time("date")
	f.Version = d.str("version")
	f.Rules = d.rules("rules")
	if d.err == nil && d.off != len(d.data) {
		d.fail("trailing junk", fmt.Errorf("%d bytes after last field", len(d.data)-d.off))
	}
	if d.err != nil {
		return nil, d.err
	}
	return f, nil
}

// List materialises the snapshot and verifies it against the blob's
// fingerprint; a mismatch (e.g. a duplicate-collapsed rule set) returns
// ErrFingerprint.
func (f *Full) List() (*psl.List, error) {
	l := psl.NewList(f.Rules)
	l.Date = f.Date
	l.Version = f.Version
	if got := l.Fingerprint(); got != f.FP {
		return nil, fmt.Errorf("%w: full blob materialises to %.12s…, header promises %.12s… (seq %d)",
			ErrFingerprint, got, f.FP, f.Seq)
	}
	return l, nil
}

// checkEnvelope validates a blob's fixed frame — minimum length, magic,
// codec version, and the SHA-256 trailer — and returns the field bytes
// between the version byte and the trailer.
func checkEnvelope(data []byte, magic uint32, kind string) ([]byte, error) {
	const frame = 4 + 1 + sha256.Size
	if len(data) < frame {
		return nil, fmt.Errorf("%w: %s blob is %d bytes, frame alone needs %d", ErrCorrupt, kind, len(data), frame)
	}
	if got := binary.BigEndian.Uint32(data); got != magic {
		return nil, fmt.Errorf("%w: %s magic %#08x, want %#08x", ErrCorrupt, kind, got, magic)
	}
	if data[4] != codecVersion {
		return nil, fmt.Errorf("%w: %s codec version %d, want %d", ErrCorrupt, kind, data[4], codecVersion)
	}
	payload, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], trailer) {
		return nil, fmt.Errorf("%w: %s checksum mismatch", ErrCorrupt, kind)
	}
	return payload[5:], nil
}

// appendFP appends a hex fingerprint as 32 raw bytes. Fingerprints come
// from psl.List.Fingerprint; anything else is a programming error.
func appendFP(buf []byte, fp string) []byte {
	raw, err := hex.DecodeString(fp)
	if err != nil || len(raw) != sha256.Size {
		panic(fmt.Sprintf("dist: invalid fingerprint %q", fp))
	}
	return append(buf, raw...)
}

// appendTime encodes Unix nanoseconds (0 = unset) so an applied list's
// Date is identical, not just close, to the locally materialised one.
func appendTime(buf []byte, t time.Time) []byte {
	if t.IsZero() {
		return binary.AppendUvarint(buf, 0)
	}
	return binary.AppendUvarint(buf, uint64(t.UnixNano()))
}

func appendRules(buf []byte, rules []psl.Rule) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(rules)))
	for _, r := range rules {
		buf = append(buf, ruleKind(r))
		buf = binary.AppendUvarint(buf, uint64(len(r.Suffix)))
		buf = append(buf, r.Suffix...)
	}
	return buf
}

// ruleKind packs a rule's flags and section into one byte: bit 0
// wildcard, bit 1 exception, bits 2-3 section.
func ruleKind(r psl.Rule) byte {
	var k byte
	if r.Wildcard {
		k |= 1
	}
	if r.Exception {
		k |= 2
	}
	k |= byte(r.Section) << 2
	return k
}

// encodedRuleSize is the exact byte cost appendRules pays for one rule;
// the chain statistics use it to price full blobs without building them.
func encodedRuleSize(r psl.Rule) int {
	return 1 + uvarintLen(uint64(len(r.Suffix))) + len(r.Suffix)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// decoder walks a blob's field bytes, accumulating the first error.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(what string, err error) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s: %v", ErrCorrupt, what, err)
	}
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail(what, errors.New("bad uvarint"))
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.data) {
		d.fail(what, fmt.Errorf("need %d bytes, have %d", n, len(d.data)-d.off))
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) seq(what string) int {
	v := d.uvarint(what)
	if d.err == nil && v > 1<<31 {
		d.fail(what, fmt.Errorf("sequence %d out of range", v))
		return 0
	}
	return int(v)
}

func (d *decoder) fp(what string) string {
	return hex.EncodeToString(d.take(sha256.Size, what))
}

func (d *decoder) time(what string) time.Time {
	v := d.uvarint(what)
	if d.err != nil || v == 0 {
		return time.Time{}
	}
	if v > 1<<63-1 {
		d.fail(what, fmt.Errorf("timestamp %d out of range", v))
		return time.Time{}
	}
	return time.Unix(0, int64(v)).UTC()
}

func (d *decoder) str(what string) string {
	n := d.uvarint(what)
	if d.err == nil && n > 1024 {
		d.fail(what, fmt.Errorf("string length %d out of range", n))
		return ""
	}
	return string(d.take(int(n), what))
}

func (d *decoder) rules(what string) []psl.Rule {
	n := d.uvarint(what + " count")
	if d.err != nil {
		return nil
	}
	if n > maxRuleCount {
		d.fail(what, fmt.Errorf("rule count %d out of range", n))
		return nil
	}
	rules := make([]psl.Rule, 0, min(int(n), 16384))
	for i := 0; i < int(n); i++ {
		r, ok := d.rule(fmt.Sprintf("%s[%d]", what, i))
		if !ok {
			return nil
		}
		rules = append(rules, r)
	}
	return rules
}

// rule decodes one rule and validates it by round-tripping through
// psl.ParseRule: the decoded rule must be exactly what the parser
// produces for its own rendering, so no malformed or non-canonical rule
// (bad flags byte, interior wildcard, un-normalized suffix, "!*."
// combination) survives decoding.
func (d *decoder) rule(what string) (psl.Rule, bool) {
	kindB := d.take(1, what+" kind")
	if d.err != nil {
		return psl.Rule{}, false
	}
	kind := kindB[0]
	if kind>>4 != 0 {
		d.fail(what, fmt.Errorf("kind byte %#x has reserved bits set", kind))
		return psl.Rule{}, false
	}
	n := d.uvarint(what + " suffix length")
	if d.err == nil && n > maxRuleLen {
		d.fail(what, fmt.Errorf("suffix length %d out of range", n))
	}
	suffix := d.take(int(n), what+" suffix")
	if d.err != nil {
		return psl.Rule{}, false
	}
	r := psl.Rule{
		Suffix:    string(suffix),
		Wildcard:  kind&1 != 0,
		Exception: kind&2 != 0,
		Section:   psl.Section(kind >> 2),
	}
	if r.Section > psl.SectionPrivate {
		d.fail(what, fmt.Errorf("unknown section %d", r.Section))
		return psl.Rule{}, false
	}
	canon, err := psl.ParseRule(r.String(), r.Section)
	if err != nil || canon != r {
		d.fail(what, fmt.Errorf("rule %q is not canonical (%v)", r.String(), err))
		return psl.Rule{}, false
	}
	return r, true
}
