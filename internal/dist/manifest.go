package dist

import (
	"encoding/json"
	"fmt"
)

// maxDepth bounds the advertised relay depth; real deployments are a
// handful of tiers, so anything larger is a loop or a lie.
const maxDepth = 255

// EncodeManifest renders a manifest as its JSON wire form. The manifest
// must be valid; encoding an invalid manifest is a programming error
// (origins and relays only ever publish verified state).
func EncodeManifest(m Manifest) []byte {
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("dist: encoding invalid manifest: %v", err))
	}
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("dist: manifest marshal: %v", err))
	}
	return b
}

// DecodeManifest parses and validates a manifest blob. Replicas route
// every manifest response through this, so a lying or corrupted upstream
// surfaces as an explicit decode error instead of propagating a bogus
// head into the sync loop. Errors wrap ErrCorrupt, mirroring the patch
// and full codecs.
func DecodeManifest(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	return m, nil
}

// Validate checks every field's bounds: the sequence range, the
// fingerprint shape, the retention window, and the metadata sizes. A
// manifest that passes is safe to act on — its head names a plausible
// version pinned by a well-formed fingerprint, and its min_seq window is
// coherent.
func (m Manifest) Validate() error {
	if m.Seq < 0 || m.Seq > 1<<31 {
		return fmt.Errorf("head seq %d out of range", m.Seq)
	}
	if err := validateFP(m.Fingerprint); err != nil {
		return fmt.Errorf("fingerprint: %v", err)
	}
	if m.MinSeq < 0 || m.MinSeq > m.Seq {
		return fmt.Errorf("min_seq %d outside [0, %d]", m.MinSeq, m.Seq)
	}
	if m.Rules < 0 || m.Rules > maxRuleCount {
		return fmt.Errorf("rule count %d out of range", m.Rules)
	}
	if len(m.Version) > 1024 {
		return fmt.Errorf("version string is %d bytes", len(m.Version))
	}
	if m.Depth < 0 || m.Depth > maxDepth {
		return fmt.Errorf("depth %d out of range [0, %d]", m.Depth, maxDepth)
	}
	if !m.Date.IsZero() && (m.Date.Year() < 1970 || m.Date.Year() > 9999) {
		return fmt.Errorf("date %v out of range", m.Date)
	}
	if !m.PublishedAt.IsZero() && (m.PublishedAt.Year() < 1970 || m.PublishedAt.Year() > 9999) {
		return fmt.Errorf("published_at %v out of range", m.PublishedAt)
	}
	return nil
}

// validateFP checks a hex SHA-256 rule-set fingerprint: exactly 64
// lowercase hex digits, the form psl.List.Fingerprint produces.
func validateFP(fp string) error {
	if len(fp) != 64 {
		return fmt.Errorf("length %d, want 64", len(fp))
	}
	for i := 0; i < len(fp); i++ {
		c := fp[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("byte %d is %q, want lowercase hex", i, c)
		}
	}
	return nil
}
