package dist

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/history"
	"repro/internal/psl"
)

// Chain precomputes, in one pass over a history's event stream, the
// rule-set fingerprint of every version. Materialising each of the
// 1,142 versions with ListAt and fingerprinting it would replay the
// whole event history per version (quadratic); the chain instead keeps
// one canonically sorted rule set live, applies each event's delta with
// binary-search insertions and deletions, and fingerprints the sorted
// set in place via psl.FingerprintOfSorted.
//
// The fingerprints are what make patch chains trustworthy: the origin
// stamps them into every patch header, and a replica refuses any hop
// whose source or target doesn't match.
// The chain is extendable: Origin.Publish appends freshly accepted
// versions via AppendEvent. The live sorted tip set is retained for
// incremental fingerprinting, guarded by a mutex, while the fingerprint
// table itself sits behind an atomic snapshot pointer so concurrent
// readers stay lock-free.
type Chain struct {
	h *history.History

	mu   sync.Mutex // serializes AppendEvent
	live []psl.Rule // tip rule set, psl.CompareRules-sorted; guarded by mu
	fps  atomic.Pointer[[]string]
}

// NewChain builds the fingerprint table for all of h's versions.
func NewChain(h *history.History) *Chain {
	events := h.Events()
	c := &Chain{h: h}
	fps := make([]string, len(events))
	c.live = walk(events, func(seq int, rules []psl.Rule) {
		fps[seq] = psl.FingerprintOfSorted(rules)
	})
	c.fps.Store(&fps)
	return c
}

// Len reports the number of versions covered.
func (c *Chain) Len() int { return len(*c.fps.Load()) }

// Fingerprint returns the rule-set fingerprint of version seq, equal to
// h.ListAt(seq).Fingerprint() without the replay.
func (c *Chain) Fingerprint(seq int) string { return (*c.fps.Load())[seq] }

// AppendEvent extends the fingerprint table with one freshly appended
// history event and returns the new version's fingerprint. The event
// must carry the next sequence number (Origin.Publish appends to the
// history first, then here, so the chain never gets ahead of the event
// stream readers consult through Patch).
func (c *Chain) AppendEvent(ev history.Event) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	fps := *c.fps.Load()
	if ev.Seq != len(fps) {
		panic(fmt.Sprintf("dist: chain append out of order: event seq %d, chain len %d", ev.Seq, len(fps)))
	}
	c.live = applyEvent(c.live, ev)
	fp := psl.FingerprintOfSorted(c.live)
	next := append(fps[:len(fps):len(fps)], fp)
	c.fps.Store(&next)
	return fp
}

// PreviewFingerprint reports the fingerprint the rule set would carry
// after applying the delta at the current tip, without extending the
// chain. Origin.Publish uses it to refuse fingerprint-neutral deltas
// before they enter the event stream.
func (c *Chain) PreviewFingerprint(added, removed []psl.Rule) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	rules := append([]psl.Rule(nil), c.live...)
	rules = applyEvent(rules, history.Event{Added: added, Removed: removed})
	return psl.FingerprintOfSorted(rules)
}

// Patch builds the delta taking version from to version to (from < to)
// by folding the events in (from, to] into one net add/remove set. A
// key touched multiple times collapses to its final operation; a rule
// re-added after removal within the window encodes as a remove+add
// pair, and a rule added then removed again encodes as a remove that
// Apply may find absent — a harmless no-op under the dedup semantics.
// The fingerprint pair pins the exact result regardless.
func (c *Chain) Patch(from, to int) *Patch {
	fps := *c.fps.Load()
	if from < 0 || to >= len(fps) || from >= to {
		panic(fmt.Sprintf("dist: patch range [%d, %d] invalid for %d versions", from, to, len(fps)))
	}
	type lastOp struct {
		rule psl.Rule
		add  bool
	}
	state := make(map[string]lastOp)
	events := c.h.Events()
	for seq := from + 1; seq <= to; seq++ {
		// ListAt processes removals before additions within one event.
		for _, r := range events[seq].Removed {
			state[r.String()] = lastOp{rule: r, add: false}
		}
		for _, r := range events[seq].Added {
			state[r.String()] = lastOp{rule: r, add: true}
		}
	}
	var added, removed []psl.Rule
	for _, op := range state {
		if op.add {
			added = append(added, op.rule)
		} else {
			removed = append(removed, op.rule)
		}
	}
	sort.Slice(added, func(i, j int) bool { return psl.CompareRules(added[i], added[j]) < 0 })
	sort.Slice(removed, func(i, j int) bool { return psl.CompareRules(removed[i], removed[j]) < 0 })
	meta := c.h.Meta(to)
	return &Patch{
		FromSeq:   from,
		ToSeq:     to,
		FromFP:    fps[from],
		ToFP:      fps[to],
		ToVersion: meta.Label(),
		ToDate:    meta.Date,
		Removed:   removed,
		Added:     added,
	}
}

// walk replays an event stream once, maintaining the live rule set in
// psl.CompareRules order, and calls fn after each version with the
// sorted set. The slice is reused between calls; fn must not retain it.
// Returns the final live set.
func walk(events []history.Event, fn func(seq int, rules []psl.Rule)) []psl.Rule {
	rules := make([]psl.Rule, 0, 10000)
	for _, ev := range events {
		rules = applyEvent(rules, ev)
		fn(ev.Seq, rules)
	}
	return rules
}

// applyEvent folds one event's delta into a sorted live rule set,
// removals first (matching ListAt's replay order), returning the
// updated slice.
func applyEvent(rules []psl.Rule, ev history.Event) []psl.Rule {
	for _, r := range ev.Removed {
		if i, ok := find(rules, r); ok {
			rules = append(rules[:i], rules[i+1:]...)
		}
	}
	for _, r := range ev.Added {
		i, ok := find(rules, r)
		if ok {
			// Duplicate key: ListAt keeps the first-added rule.
			continue
		}
		rules = append(rules, psl.Rule{})
		copy(rules[i+1:], rules[i:])
		rules[i] = r
	}
	return rules
}

// find locates the rule with r's canonical key in a sorted set,
// returning its index, or the insertion index when absent.
func find(rules []psl.Rule, r psl.Rule) (int, bool) {
	i := sort.Search(len(rules), func(i int) bool { return psl.CompareRules(rules[i], r) >= 0 })
	return i, i < len(rules) && psl.CompareRules(rules[i], r) == 0
}

// ChainStats is the "why deltas" ablation: the cumulative transfer cost
// of following every version by single-hop patches versus re-fetching
// each version as a full snapshot blob.
type ChainStats struct {
	// Versions is the number of history versions measured.
	Versions int `json:"versions"`
	// PatchBytesTotal sums the encoded single-hop patches v0→v1→…→head.
	PatchBytesTotal int64 `json:"patch_bytes_total"`
	// FullBytesTotal sums the encoded full blob of every version after
	// the first (the fair comparison: both columns pay for v0 once).
	FullBytesTotal int64 `json:"full_bytes_total"`
	// BootstrapBytes is the full blob of version 0, the cost both
	// strategies share.
	BootstrapBytes int64 `json:"bootstrap_bytes"`
	// MaxPatchBytes is the largest single-hop patch (the JP spike).
	MaxPatchBytes int `json:"max_patch_bytes"`
	// HeadFullBytes is the full blob of the newest version.
	HeadFullBytes int64 `json:"head_full_bytes"`
}

// Ratio reports full-sync bytes per patch byte; >1 means deltas win.
func (s ChainStats) Ratio() float64 {
	if s.PatchBytesTotal == 0 {
		return 0
	}
	return float64(s.FullBytesTotal) / float64(s.PatchBytesTotal)
}

// ComputeChainStats replays h once, pricing each hop both ways. Full
// blobs are priced by exact formula (see fullBlobSize) rather than
// encoded, so the whole sweep stays a single linear pass.
func ComputeChainStats(h *history.History) ChainStats {
	events := h.Events()
	s := ChainStats{Versions: len(events)}
	var prevFP string
	walk(events, func(seq int, rules []psl.Rule) {
		ev := events[seq]
		rulesEnc := 0 // exact encoded size of the live set
		for _, r := range rules {
			rulesEnc += encodedRuleSize(r)
		}
		fp := psl.FingerprintOfSorted(rules)
		meta := h.Meta(seq)
		full := fullBlobSize(meta, len(rules), rulesEnc)
		if seq == 0 {
			s.BootstrapBytes = int64(full)
		} else {
			p := &Patch{
				FromSeq:   seq - 1,
				ToSeq:     seq,
				FromFP:    prevFP,
				ToFP:      fp,
				ToVersion: meta.Label(),
				ToDate:    meta.Date,
				Removed:   ev.Removed,
				Added:     ev.Added,
			}
			n := len(p.Encode())
			s.PatchBytesTotal += int64(n)
			if n > s.MaxPatchBytes {
				s.MaxPatchBytes = n
			}
			s.FullBytesTotal += int64(full)
		}
		s.HeadFullBytes = int64(full)
		prevFP = fp
	})
	return s
}

// fullBlobSize prices EncodeFull for a version without materialising
// it: frame (magic, codec version, trailer) + header fields + rules.
// Kept in lockstep with EncodeFull by TestFullBlobSizeFormula.
func fullBlobSize(meta history.VersionMeta, nRules, rulesEnc int) int {
	n := 4 + 1 // magic + codec version
	n += uvarintLen(uint64(meta.Seq))
	n += 32 // fingerprint
	date := uint64(0)
	if !meta.Date.IsZero() {
		date = uint64(meta.Date.UnixNano())
	}
	n += uvarintLen(date)
	label := meta.Label()
	n += uvarintLen(uint64(len(label))) + len(label)
	n += uvarintLen(uint64(nRules)) + rulesEnc
	n += 32 // trailer
	return n
}
