package dist

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/psl"
)

// StateFileName is the snapshot file inside a replica state directory.
// The payload is a standard "PSLF" full blob (codec.go), so the on-disk
// format inherits the codec's SHA-256 trailer and fingerprint promise —
// there is no second, weaker serialization to audit.
const StateFileName = "snapshot.pslf"

// SaveState durably persists a verified snapshot into dir, creating the
// directory if needed. The write is crash-safe: the blob goes to a
// temporary file, is fsynced, and is renamed over StateFileName (then
// the directory is fsynced so the rename itself survives a crash). A
// reader therefore sees either the previous complete snapshot or the
// new one, never a torn write — and a torn write that slips through an
// unclean shutdown is caught by the checksum on load.
func SaveState(dir string, l *psl.List, seq int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dist: state dir: %w", err)
	}
	blob := EncodeFull(l, seq)
	tmp, err := os.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("dist: state temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = os.Remove(tmpName) }
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("dist: state write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("dist: state fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("dist: state close: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, StateFileName)); err != nil {
		cleanup()
		return fmt.Errorf("dist: state rename: %w", err)
	}
	// Fsync the directory so the rename is on disk, not just in the
	// directory cache. Best effort on filesystems that refuse it.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// LoadState reads the persisted snapshot back, verifying the blob
// checksum and the decoded list's fingerprint (both via the codec). A
// missing file surfaces as fs.ErrNotExist for callers to distinguish
// "never persisted" from "corrupt".
func LoadState(dir string) (*psl.List, int, error) {
	data, err := os.ReadFile(filepath.Join(dir, StateFileName))
	if err != nil {
		return nil, 0, err
	}
	f, err := DecodeFull(data)
	if err != nil {
		return nil, 0, fmt.Errorf("dist: state decode: %w", err)
	}
	l, err := f.List()
	if err != nil {
		return nil, 0, fmt.Errorf("dist: state verify: %w", err)
	}
	return l, f.Seq, nil
}
