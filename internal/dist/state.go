package dist

import (
	"fmt"
	"path/filepath"

	"repro/internal/faultfs"
	"repro/internal/psl"
)

// StateFileName is the snapshot file inside a replica state directory.
// The payload is a standard "PSLF" full blob (codec.go), so the on-disk
// format inherits the codec's SHA-256 trailer and fingerprint promise —
// there is no second, weaker serialization to audit.
const StateFileName = "snapshot.pslf"

// MatcherFileName is the compiled-matcher file inside a replica state
// directory: the verified "PSLM" envelope exactly as fetched, so a
// restarted process can reload the compiled matcher (checksum and
// fingerprint re-verified against the restored snapshot) and start
// serving with zero compiles.
const MatcherFileName = "matcher.pslm"

// stateFS and blobFS are the default filesystems behind the snapshot
// and matcher stores: the real OS wrapped with failpoint sites
// ("dist.state.rename", "dist.blob.sync", ...) so production binaries
// carry armable fault injection at every durable step, at the cost of
// two atomic loads per filesystem call when disarmed.
var (
	stateFS = faultfs.Instrument(faultfs.OS{}, "dist.state")
	blobFS  = faultfs.Instrument(faultfs.OS{}, "dist.blob")
)

// WriteFileAtomic crash-safely replaces dir/name with blob: the bytes
// go to a temporary file, are fsynced, and are renamed into place (then
// the directory is fsynced so the rename itself survives a crash). A
// reader therefore sees either the previous complete file or the new
// one, never a torn write — and a torn write that slips through an
// unclean shutdown is caught by the blob checksum on load. Exported so
// other durable stores (the submission pipeline's state directory) can
// reuse the same discipline.
func WriteFileAtomic(dir, name string, blob []byte) error {
	return WriteFileAtomicFS(stateFS, dir, name, blob)
}

// WriteFileAtomicFS is WriteFileAtomic over an explicit filesystem —
// the injection point for faultfs.MemFS in crash-consistency tests and
// for stores (the submission pipeline) that carry their own
// failpoint-instrumented FS.
func WriteFileAtomicFS(fsys faultfs.FS, dir, name string, blob []byte) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dist: state dir: %w", err)
	}
	tmp, err := fsys.CreateTemp(dir, "."+name+"-*.tmp")
	if err != nil {
		return fmt.Errorf("dist: state temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = fsys.Remove(tmpName) }
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("dist: state write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("dist: state fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("dist: state close: %w", err)
	}
	if err := fsys.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		cleanup()
		return fmt.Errorf("dist: state rename: %w", err)
	}
	// Fsync the directory so the rename is on disk, not just in the
	// directory cache — without it the rename can be lost to a crash
	// and the durability claim above is hollow. Filesystems that refuse
	// directory fsync are tolerated inside SyncDir; anything else is a
	// real durability failure and propagates.
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("dist: state dir fsync: %w", err)
	}
	return nil
}

// SaveState durably persists a verified snapshot into dir, creating the
// directory if needed (write-temp → fsync → atomic-rename, see
// WriteFileAtomic).
func SaveState(dir string, l *psl.List, seq int) error {
	return SaveStateFS(stateFS, dir, l, seq)
}

// SaveStateFS is SaveState over an explicit filesystem.
func SaveStateFS(fsys faultfs.FS, dir string, l *psl.List, seq int) error {
	return WriteFileAtomicFS(fsys, dir, StateFileName, EncodeFull(l, seq))
}

// LoadState reads the persisted snapshot back, verifying the blob
// checksum and the decoded list's fingerprint (both via the codec). A
// missing file surfaces as fs.ErrNotExist for callers to distinguish
// "never persisted" from "corrupt".
func LoadState(dir string) (*psl.List, int, error) {
	return LoadStateFS(stateFS, dir)
}

// LoadStateFS is LoadState over an explicit filesystem.
func LoadStateFS(fsys faultfs.FS, dir string) (*psl.List, int, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, StateFileName))
	if err != nil {
		return nil, 0, err
	}
	f, err := DecodeFull(data)
	if err != nil {
		return nil, 0, fmt.Errorf("dist: state decode: %w", err)
	}
	l, err := f.List()
	if err != nil {
		return nil, 0, fmt.Errorf("dist: state verify: %w", err)
	}
	return l, f.Seq, nil
}

// SaveMatcherBlob durably persists a verified compiled-matcher envelope
// next to the snapshot, with the same crash-safety discipline. Callers
// pass the envelope bytes exactly as verified, so load-time
// verification covers the same chain fetch-time verification did.
func SaveMatcherBlob(dir string, envelope []byte) error {
	return SaveMatcherBlobFS(blobFS, dir, envelope)
}

// SaveMatcherBlobFS is SaveMatcherBlob over an explicit filesystem.
func SaveMatcherBlobFS(fsys faultfs.FS, dir string, envelope []byte) error {
	return WriteFileAtomicFS(fsys, dir, MatcherFileName, envelope)
}

// LoadMatcherBlob reads the persisted compiled matcher back and runs
// the full verification chain against the expected (seq, fp) — the
// values of the snapshot the caller just restored. A file left over
// from an older version simply fails the seq or fingerprint check and
// is reported as an error, never returned; the caller compiles instead.
// A missing file surfaces as fs.ErrNotExist.
func LoadMatcherBlob(dir string, seq int, fp string) (*psl.PackedMatcher, error) {
	return LoadMatcherBlobFS(blobFS, dir, seq, fp)
}

// LoadMatcherBlobFS is LoadMatcherBlob over an explicit filesystem.
func LoadMatcherBlobFS(fsys faultfs.FS, dir string, seq int, fp string) (*psl.PackedMatcher, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, MatcherFileName))
	if err != nil {
		return nil, err
	}
	pm, err := UnpackMatcherBlob(data, seq, fp)
	if err != nil {
		return nil, fmt.Errorf("dist: matcher state verify: %w", err)
	}
	return pm, nil
}
