package dist

import (
	"sync"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/psl"
)

func mustParse(t *testing.T, s string, section psl.Section) psl.Rule {
	t.Helper()
	r, err := psl.ParseRule(s, section)
	if err != nil {
		t.Fatalf("ParseRule(%q): %v", s, err)
	}
	return r
}

// TestOriginPublish drives the write path's terminal stage: a published
// delta must advance the head, extend the fingerprint chain coherently,
// and be reachable through the ordinary replication machinery.
func TestOriginPublish(t *testing.T) {
	h := history.Generate(history.Config{Versions: 30})
	o := NewOrigin(h)
	oldHead := o.Head()
	oldFP := o.chain.Fingerprint(oldHead)

	add := mustParse(t, "publish-test.example", psl.SectionPrivate)
	m, err := o.Publish(time.Now(), []psl.Rule{add}, nil)
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if m.Seq != oldHead+1 {
		t.Fatalf("published seq %d, want %d", m.Seq, oldHead+1)
	}
	if m.Fingerprint == oldFP {
		t.Fatalf("published fingerprint did not change")
	}
	if m.PublishedAt.IsZero() {
		t.Fatalf("published manifest missing PublishedAt")
	}
	if o.Head() != m.Seq || h.Len() != m.Seq+1 || o.chain.Len() != m.Seq+1 {
		t.Fatalf("head/history/chain out of step: %d/%d/%d", o.Head(), h.Len(), o.chain.Len())
	}

	// The materialised tip carries the rule, and its fingerprint matches
	// the incrementally maintained chain (i.e. AppendEvent agrees with a
	// full replay).
	tip := h.ListAt(m.Seq)
	if !tip.Contains(add) {
		t.Fatalf("tip list missing published rule")
	}
	if got := tip.Fingerprint(); got != m.Fingerprint {
		t.Fatalf("tip fingerprint %s, manifest %s", got, m.Fingerprint)
	}
	if rebuilt := NewChain(h).Fingerprint(m.Seq); rebuilt != m.Fingerprint {
		t.Fatalf("incremental chain fingerprint %s, rebuilt %s", m.Fingerprint, rebuilt)
	}

	// A patch from the old head applies cleanly.
	p := o.chain.Patch(oldHead, m.Seq)
	patched, err := p.Apply(h.ListAt(oldHead), oldFP)
	if err != nil {
		t.Fatalf("patch apply: %v", err)
	}
	if patched.Fingerprint() != m.Fingerprint {
		t.Fatalf("patched fingerprint mismatch")
	}

	// Removal round-trips too.
	m2, err := o.Publish(time.Now(), nil, []psl.Rule{add})
	if err != nil {
		t.Fatalf("Publish remove: %v", err)
	}
	if h.ListAt(m2.Seq).Contains(add) {
		t.Fatalf("removed rule still present at new tip")
	}
	if m2.Fingerprint != oldFP {
		t.Fatalf("add+remove did not return to the original fingerprint")
	}
}

// TestOriginPublishRejections pins the validation errors: incoherent
// deltas and fingerprint-neutral changes never enter the event stream.
func TestOriginPublishRejections(t *testing.T) {
	h := history.Generate(history.Config{Versions: 20})
	o := NewOrigin(h)
	lenBefore := h.Len()
	tip := h.Latest()
	existing := tip.Rules()[0]

	cases := []struct {
		name     string
		add, rem []psl.Rule
	}{
		{"empty delta", nil, nil},
		{"added rule already present", []psl.Rule{existing}, nil},
		{"removed rule absent", nil, []psl.Rule{mustParse(t, "absent.example", psl.SectionPrivate)}},
	}
	for _, tc := range cases {
		if _, err := o.Publish(time.Now(), tc.add, tc.rem); err == nil {
			t.Errorf("%s: Publish succeeded, want error", tc.name)
		}
	}

	// A pure section move removes and re-adds the same key; fingerprints
	// ignore Section, so the delta is fingerprint-neutral and must be
	// refused (the manifest ETag would not change and pollers would
	// stall).
	moved, err := psl.ParseRule(existing.String(), psl.SectionPrivate)
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if moved.Section == existing.Section {
		moved, err = psl.ParseRule(existing.String(), psl.SectionICANN)
		if err != nil {
			t.Fatalf("ParseRule: %v", err)
		}
	}
	if _, err := o.Publish(time.Now(), []psl.Rule{moved}, []psl.Rule{existing}); err == nil {
		t.Errorf("fingerprint-neutral section move: Publish succeeded, want error")
	}

	if h.Len() != lenBefore {
		t.Fatalf("rejected publishes extended the history: %d -> %d", lenBefore, h.Len())
	}
}

// TestHistoryAppendConcurrentReaders exercises the snapshot discipline:
// readers replaying or scanning the history while a writer appends must
// never observe a torn state (run with -race).
func TestHistoryAppendConcurrentReaders(t *testing.T) {
	h := history.Generate(history.Config{Versions: 20})
	o := NewOrigin(h)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := h.Len()
				metas := h.Metas()
				if len(metas) < n {
					t.Errorf("metas shorter than Len: %d < %d", len(metas), n)
					return
				}
				l := h.ListAt(n - 1)
				if l.Len() != metas[n-1].Rules {
					t.Errorf("version %d: list %d rules, meta %d", n-1, l.Len(), metas[n-1].Rules)
					return
				}
				_ = o.Manifest()
			}
		}()
	}
	for i := 0; i < 25; i++ {
		// Alternate: add a rule, then remove that same rule next round.
		r := mustParse(t, "concurrent-"+string(rune('a'+(i/2)%26))+".example", psl.SectionPrivate)
		if i%2 == 0 {
			if _, err := o.Publish(time.Now(), []psl.Rule{r}, nil); err != nil {
				t.Fatalf("publish add %d: %v", i, err)
			}
		} else {
			if _, err := o.Publish(time.Now(), nil, []psl.Rule{r}); err != nil {
				t.Fatalf("publish remove %d: %v", i, err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
