package dist

import (
	"errors"
	"io/fs"
	"syscall"
	"testing"

	"repro/internal/failpoint"
	"repro/internal/faultfs"
	"repro/internal/psl"
)

// TestWriteFileAtomicFSPropagatesDirFsync: the directory fsync after
// the rename is part of the durability claim — a real failure there
// must surface, not vanish into a discarded error.
func TestWriteFileAtomicFSPropagatesDirFsync(t *testing.T) {
	defer failpoint.DisarmAll()
	m := faultfs.NewMemFS(1)
	fsys := faultfs.Instrument(m, "test.dist.state")
	if err := failpoint.Arm("test.dist.state.syncdir=err(1,errno=EIO)", 3); err != nil {
		t.Fatal(err)
	}
	err := WriteFileAtomicFS(fsys, "d", "f", []byte("payload"))
	if !errors.Is(err, failpoint.ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("WriteFileAtomicFS with failing dir fsync = %v, want injected EIO", err)
	}
}

// TestWriteFileAtomicFSCleansTempOnError: any failure before the rename
// removes the temp file rather than littering the state dir.
func TestWriteFileAtomicFSCleansTempOnError(t *testing.T) {
	defer failpoint.DisarmAll()
	m := faultfs.NewMemFS(1)
	fsys := faultfs.Instrument(m, "test.dist.clean")
	if err := failpoint.Arm("test.dist.clean.sync=err(1,errno=ENOSPC)", 3); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomicFS(fsys, "d", "f", []byte("payload")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want injected ENOSPC, got %v", err)
	}
	failpoint.DisarmAll()
	ents, err := m.ReadDir("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("temp file left behind after failed write: %v", ents[0].Name())
	}
}

func TestSaveLoadStateFSRoundTrip(t *testing.T) {
	m := faultfs.NewMemFS(1)
	h := testHist(t, 20)
	want := h.ListAt(4)
	if err := SaveStateFS(m, "state", want, 4); err != nil {
		t.Fatalf("SaveStateFS: %v", err)
	}
	l, seq, err := LoadStateFS(m, "state")
	if err != nil {
		t.Fatalf("LoadStateFS: %v", err)
	}
	if seq != 4 || l.Fingerprint() != want.Fingerprint() {
		t.Fatalf("round trip: seq=%d fp match=%v", seq, l.Fingerprint() == want.Fingerprint())
	}
	if _, _, err := LoadStateFS(faultfs.NewMemFS(2), "state"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("LoadStateFS empty fs = %v, want ErrNotExist", err)
	}
}

// TestLoadStateFSRejectsCorruption: a bit flip anywhere in the
// persisted blob fails the checksum — the quarantine path torture
// exercises end-to-end.
func TestLoadStateFSRejectsCorruption(t *testing.T) {
	m := faultfs.NewMemFS(1)
	h := testHist(t, 20)
	if err := SaveStateFS(m, "state", h.ListAt(5), 5); err != nil {
		t.Fatal(err)
	}
	blob, err := m.ReadFile("state/" + StateFileName)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x40
	m.PutFile("state/"+StateFileName, blob)
	if _, _, err := LoadStateFS(m, "state"); err == nil {
		t.Fatal("LoadStateFS accepted a corrupted blob")
	}
}

func TestSaveLoadMatcherBlobFS(t *testing.T) {
	m := faultfs.NewMemFS(1)
	h := testHist(t, 20)
	l := h.ListAt(6)
	pm := psl.NewPackedMatcher(l)
	env := EncodeMatcherBlob(6, l.Fingerprint(), pm.Marshal())
	if err := SaveMatcherBlobFS(m, "state", env); err != nil {
		t.Fatalf("SaveMatcherBlobFS: %v", err)
	}
	if _, err := LoadMatcherBlobFS(m, "state", 6, l.Fingerprint()); err != nil {
		t.Fatalf("LoadMatcherBlobFS: %v", err)
	}
	// Wrong seq or fingerprint: verified load must refuse.
	if _, err := LoadMatcherBlobFS(m, "state", 7, l.Fingerprint()); err == nil {
		t.Fatal("LoadMatcherBlobFS accepted a stale seq")
	}
}
