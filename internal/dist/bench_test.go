package dist

import (
	"testing"

	"repro/internal/history"
)

// BenchmarkPatchChain prices the delta-distribution ablation: following
// the full default history hop by hop via patches versus re-fetching a
// full snapshot blob per version. The reported custom metrics feed the
// EXPERIMENTS.md ablation row and BENCH_matchers.json; the benchmark is
// meaningful at -benchtime=1x (one iteration prices the whole chain).
func BenchmarkPatchChain(b *testing.B) {
	h := history.Generate(history.Config{Seed: history.DefaultSeed})
	b.ResetTimer()
	var s ChainStats
	for i := 0; i < b.N; i++ {
		s = ComputeChainStats(h)
	}
	b.ReportMetric(float64(s.PatchBytesTotal), "patch_bytes")
	b.ReportMetric(float64(s.FullBytesTotal), "full_bytes")
	b.ReportMetric(s.Ratio(), "full/patch_ratio")
	b.ReportMetric(float64(s.MaxPatchBytes), "max_patch_bytes")
}
