package dist

import (
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/psl"
)

// RelayOptions tunes a Relay. Zero values get defaults.
type RelayOptions struct {
	// Retain is how many verified snapshots the relay keeps for serving
	// downstream. The window bounds both how far back full blobs reach
	// and how stale an edge can be and still patch forward (advertised
	// as the manifest's min_seq). Default 64.
	Retain int
}

func (o RelayOptions) withDefaults() RelayOptions {
	if o.Retain <= 0 {
		o.Retain = 64
	}
	return o
}

// relaySnap is one retained verified snapshot. The fingerprint arrived
// with the blob that produced the list and was verified on install, so
// the relay never recomputes it.
type relaySnap struct {
	list *psl.List
	seq  int
	fp   string
}

// Relay re-serves the /dist/ protocol downstream of a Replica: it
// follows an upstream origin (or another relay — depth is unbounded),
// retains a sliding window of the verified snapshots the replica
// installs, and answers manifest/full/patch requests from that window
// so edges fan out without touching the origin.
//
// The relay is also where delta compaction lives. Its patch endpoint is
// not limited to the hops the relay itself took upstream: any retained
// (from, to) pair is served by diffing the two snapshots directly, so N
// upstream patches coalesce into one downstream blob. The result is an
// ordinary "PSLD" patch — wire-format identical to an origin's, pinned
// by the same verified fingerprint chain — so edges need no new code
// path to benefit. Compacted spans (to-from > 1) are counted
// separately.
//
// Requests outside the window 404 (a pair the relay skipped past while
// catching up, or an edge staler than min_seq); an empty window —
// before the first verified install — answers 503 so a booting relay
// reads as "not ready" rather than "empty history". Edges recover from
// both through their normal fallback ladder.
//
// NewRelay claims the replica's OnVerified hook (chaining any existing
// one). ServeHTTP is safe for concurrent use alongside the replica's
// poll loop.
type Relay struct {
	rep  *Replica
	opts RelayOptions

	mu   sync.RWMutex
	ring []relaySnap // ascending seq; at most opts.Retain entries

	patches sync.Map // uint64(from)<<32|to -> *renderedBlob
	fulls   sync.Map // int -> *renderedBlob
	blobs   sync.Map // int -> *renderedBlob (compiled matchers)

	manifestReqs, fullReqs, patchReqs obs.Counter
	patchBytes, fullBytes             obs.Counter
	patchRenders, fullRenders         obs.Counter
	compactions                       obs.Counter
	misses                            obs.Counter
	unavailable                       obs.Counter
	notModified                       obs.Counter
	blobReqs, blobBytes, blobRenders  obs.Counter
}

// NewRelay builds a relay over rep, claiming rep.OnVerified to feed the
// snapshot window (an already-set hook still runs, after the relay's).
// Call before rep starts Bootstrap or Run.
func NewRelay(rep *Replica, opts RelayOptions) *Relay {
	rl := &Relay{rep: rep, opts: opts.withDefaults()}
	prev := rep.OnVerified
	rep.OnVerified = func(l *psl.List, seq int, fp string) {
		rl.push(relaySnap{list: l, seq: seq, fp: fp})
		if prev != nil {
			prev(l, seq, fp)
		}
	}
	return rl
}

// Replica exposes the upstream-facing replica (for Run, Bootstrap,
// health, and metrics registration).
func (rl *Relay) Replica() *Replica { return rl.rep }

// Seed installs a trusted local snapshot (e.g. restored state) into the
// serving window. RestoreState and SetState do not pass through the
// verified-install path, so a relay resuming from disk calls this to
// become servable before its first upstream sync.
func (rl *Relay) Seed(l *psl.List, seq int) {
	rl.push(relaySnap{list: l, seq: seq, fp: l.Fingerprint()})
}

// push appends a snapshot to the window, trims it to Retain, and evicts
// render-cache entries that fell below the new floor.
func (rl *Relay) push(s relaySnap) {
	rl.mu.Lock()
	// Keep the ring strictly ascending: a re-install of a seq already
	// present (or a head rewind in tests) drops the suffix it replaces.
	for len(rl.ring) > 0 && rl.ring[len(rl.ring)-1].seq >= s.seq {
		rl.ring = rl.ring[:len(rl.ring)-1]
	}
	rl.ring = append(rl.ring, s)
	if len(rl.ring) > rl.opts.Retain {
		rl.ring = append([]relaySnap(nil), rl.ring[len(rl.ring)-rl.opts.Retain:]...)
	}
	floor := rl.ring[0].seq
	rl.mu.Unlock()

	// Blobs for a given (seq, fingerprint) are immutable, so eviction is
	// purely about memory: anything referencing a seq below the floor
	// can never be served again.
	rl.fulls.Range(func(k, _ any) bool {
		if k.(int) < floor {
			rl.fulls.Delete(k)
		}
		return true
	})
	rl.blobs.Range(func(k, _ any) bool {
		if k.(int) < floor {
			rl.blobs.Delete(k)
		}
		return true
	})
	rl.patches.Range(func(k, _ any) bool {
		if int(k.(uint64)>>32) < floor {
			rl.patches.Delete(k)
		}
		return true
	})
}

// snapAt finds the retained snapshot at exactly seq.
func (rl *Relay) snapAt(seq int) (relaySnap, bool) {
	rl.mu.RLock()
	defer rl.mu.RUnlock()
	for i := len(rl.ring) - 1; i >= 0; i-- {
		if rl.ring[i].seq == seq {
			return rl.ring[i], true
		}
		if rl.ring[i].seq < seq {
			break
		}
	}
	return relaySnap{}, false
}

// window reports the retained [min, head] seq range, ok=false when
// nothing is retained yet.
func (rl *Relay) window() (head relaySnap, minSeq int, ok bool) {
	rl.mu.RLock()
	defer rl.mu.RUnlock()
	if len(rl.ring) == 0 {
		return relaySnap{}, 0, false
	}
	return rl.ring[len(rl.ring)-1], rl.ring[0].seq, true
}

// Retained reports how many snapshots the window currently holds.
func (rl *Relay) Retained() int {
	rl.mu.RLock()
	defer rl.mu.RUnlock()
	return len(rl.ring)
}

// Compactions reports patches served that coalesced more than one
// upstream version step into a single downstream blob.
func (rl *Relay) Compactions() uint64 { return rl.compactions.Load() }

// Misses reports requests for versions outside the retained window.
func (rl *Relay) Misses() uint64 { return rl.misses.Load() }

// Manifest describes the relay's serving head. ok is false while the
// window is empty.
func (rl *Relay) Manifest() (Manifest, bool) {
	head, minSeq, ok := rl.window()
	if !ok {
		return Manifest{}, false
	}
	m := Manifest{
		Seq:         head.seq,
		Fingerprint: head.fp,
		Version:     head.list.Version,
		Date:        head.list.Date.UTC(),
		Rules:       head.list.Len(),
		MinSeq:      minSeq,
		Depth:       rl.rep.UpstreamDepth() + 1,
	}
	// Carry the origin's publish stamp downstream unchanged, so every
	// tier's propagation journal measures from the same clock.
	if at, ok := rl.rep.PublishedAt(head.seq); ok {
		m.PublishedAt = at.UTC()
	}
	return m, true
}

// RegisterMetrics attaches the relay's downstream-serving families to a
// registry. The upstream-facing families are the wrapped replica's —
// register those separately via Replica().RegisterMetrics.
func (rl *Relay) RegisterMetrics(r *obs.Registry) {
	r.MustRegister("psl_dist_relay_requests_total", "Downstream distribution requests received, by endpoint.",
		obs.Labels{{"endpoint", "manifest"}}, &rl.manifestReqs)
	r.MustRegister("psl_dist_relay_requests_total", "Downstream distribution requests received, by endpoint.",
		obs.Labels{{"endpoint", "full"}}, &rl.fullReqs)
	r.MustRegister("psl_dist_relay_requests_total", "Downstream distribution requests received, by endpoint.",
		obs.Labels{{"endpoint", "patch"}}, &rl.patchReqs)
	r.MustRegister("psl_dist_relay_bytes_total", "Blob bytes served downstream, by transfer kind.",
		obs.Labels{{"kind", "patch"}}, &rl.patchBytes)
	r.MustRegister("psl_dist_relay_bytes_total", "Blob bytes served downstream, by transfer kind.",
		obs.Labels{{"kind", "full"}}, &rl.fullBytes)
	r.MustRegister("psl_dist_relay_renders_total", "Blobs rendered into the cache, by kind.",
		obs.Labels{{"kind", "patch"}}, &rl.patchRenders)
	r.MustRegister("psl_dist_relay_renders_total", "Blobs rendered into the cache, by kind.",
		obs.Labels{{"kind", "full"}}, &rl.fullRenders)
	r.MustRegister("psl_dist_relay_compactions_total", "Patches served that coalesced more than one version step.",
		nil, &rl.compactions)
	r.MustRegister("psl_dist_relay_window_misses_total", "Requests for versions outside the retained window.",
		nil, &rl.misses)
	r.MustRegister("psl_dist_relay_unavailable_total", "Requests answered 503 before the first verified install.",
		nil, &rl.unavailable)
	r.MustRegister("psl_dist_relay_not_modified_total", "Conditional requests answered 304 Not Modified.",
		nil, &rl.notModified)
	r.MustRegister("psl_dist_blob_requests_total", "Compiled matcher blob requests received.",
		nil, &rl.blobReqs)
	r.MustRegister("psl_dist_blob_bytes_total", "Compiled matcher blob bytes served.",
		nil, &rl.blobBytes)
	r.MustRegister("psl_dist_blob_renders_total", "Compiled matcher blobs rendered into the cache.",
		nil, &rl.blobRenders)
	r.MustRegister("psl_dist_relay_retained_snapshots", "Verified snapshots currently in the serving window.",
		nil, obs.GaugeFunc(func() float64 { return float64(rl.Retained()) }))
	r.MustRegister("psl_dist_relay_head_seq", "Version sequence currently served as head, -1 before the first install.",
		nil, obs.GaugeFunc(func() float64 {
			head, _, ok := rl.window()
			if !ok {
				return -1
			}
			return float64(head.seq)
		}))
}

// ServeHTTP implements http.Handler for paths under Prefix, mirroring
// the origin's surface.
func (rl *Relay) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == ManifestPath:
		rl.serveManifest(w, r)
	case strings.HasPrefix(path, fullPrefix):
		rl.serveFull(w, r, strings.TrimPrefix(path, fullPrefix))
	case strings.HasPrefix(path, patchPrefix):
		rl.servePatch(w, r, strings.TrimPrefix(path, patchPrefix))
	case strings.HasPrefix(path, blobPrefix):
		rl.serveBlob(w, r, strings.TrimPrefix(path, blobPrefix))
	default:
		http.NotFound(w, r)
	}
}

func (rl *Relay) serveManifest(w http.ResponseWriter, r *http.Request) {
	rl.manifestReqs.Add(1)
	m, ok := rl.Manifest()
	if !ok {
		rl.unavailable.Add(1)
		http.Error(w, "relay has no verified snapshot yet", http.StatusServiceUnavailable)
		return
	}
	etag := `"` + m.Fingerprint + `"`
	if r.Header.Get("If-None-Match") == etag {
		rl.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", etag)
	_, _ = w.Write(EncodeManifest(m))
}

func (rl *Relay) serveFull(w http.ResponseWriter, r *http.Request, rest string) {
	rl.fullReqs.Add(1)
	seq, err := strconv.Atoi(rest)
	if err != nil || seq < 0 {
		http.NotFound(w, r)
		return
	}
	s, ok := rl.snapAt(seq)
	if !ok {
		rl.misses.Add(1)
		http.NotFound(w, r)
		return
	}
	v, _ := rl.fulls.LoadOrStore(seq, &renderedBlob{})
	rb := v.(*renderedBlob)
	rb.once.Do(func() {
		rb.data = EncodeFull(s.list, s.seq)
		rb.etag = `"` + s.fp + `"`
		rl.fullRenders.Add(1)
		rl.rep.opts.Journal.Record(s.seq, obs.StageBlobRendered)
	})
	if r.Header.Get("If-None-Match") == rb.etag {
		rl.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", rb.etag)
	n, _ := w.Write(rb.data)
	rl.fullBytes.Add(uint64(n))
}

// serveBlob answers /dist/blob/{seq} from the retained window. The
// relay compiles (and caches) the matcher itself rather than proxying
// upstream bytes: its snapshots were fingerprint-verified on install,
// so a locally compiled blob carries exactly the same promise, works
// even when the upstream predates the endpoint, and is rendered lazily
// — a relay whose edges never ask for blobs never pays a compile.
func (rl *Relay) serveBlob(w http.ResponseWriter, r *http.Request, rest string) {
	rl.blobReqs.Add(1)
	seq, err := strconv.Atoi(rest)
	if err != nil || seq < 0 {
		http.NotFound(w, r)
		return
	}
	s, ok := rl.snapAt(seq)
	if !ok {
		rl.misses.Add(1)
		http.NotFound(w, r)
		return
	}
	v, _ := rl.blobs.LoadOrStore(seq, &renderedBlob{})
	rb := v.(*renderedBlob)
	rb.once.Do(func() {
		pm := psl.NewPackedMatcher(s.list)
		rb.data = EncodeMatcherBlob(s.seq, s.fp, pm.Marshal())
		rb.etag = `"` + s.fp + `"`
		rl.blobRenders.Add(1)
		rl.rep.opts.Journal.Record(s.seq, obs.StageBlobRendered)
	})
	if r.Header.Get("If-None-Match") == rb.etag {
		rl.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", rb.etag)
	n, _ := w.Write(rb.data)
	rl.blobBytes.Add(uint64(n))
}

func (rl *Relay) servePatch(w http.ResponseWriter, r *http.Request, rest string) {
	rl.patchReqs.Add(1)
	fromS, toS, ok := strings.Cut(rest, "/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	from, err1 := strconv.Atoi(fromS)
	to, err2 := strconv.Atoi(toS)
	if err1 != nil || err2 != nil || from < 0 || from >= to {
		http.NotFound(w, r)
		return
	}
	fromSnap, okF := rl.snapAt(from)
	toSnap, okT := rl.snapAt(to)
	if !okF || !okT {
		rl.misses.Add(1)
		http.NotFound(w, r)
		return
	}
	key := uint64(from)<<32 | uint64(to)
	v, _ := rl.patches.LoadOrStore(key, &renderedBlob{})
	rb := v.(*renderedBlob)
	rb.once.Do(func() {
		rb.data = rl.compact(fromSnap, toSnap).Encode()
		rl.patchRenders.Add(1)
		rl.rep.opts.Journal.Record(toSnap.seq, obs.StageBlobRendered)
	})
	if to-from > 1 {
		rl.compactions.Add(1)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	n, _ := w.Write(rb.data)
	rl.patchBytes.Add(uint64(n))
}

// compact builds the single patch taking the retained snapshot at from
// to the one at to, however many upstream version steps that spans. The
// endpoints' fingerprints were verified when the snapshots were
// installed, so the result carries the same chain guarantees as an
// origin patch over the same range — only the delta is recomputed, by
// diffing the two rule sets directly.
func (rl *Relay) compact(from, to relaySnap) *Patch {
	d := psl.DiffLists(from.list, to.list)
	return &Patch{
		FromSeq:   from.seq,
		ToSeq:     to.seq,
		FromFP:    from.fp,
		ToFP:      to.fp,
		ToVersion: to.list.Version,
		ToDate:    to.list.Date,
		Removed:   d.Removed,
		Added:     d.Added,
		Moved:     d.Moved,
	}
}
