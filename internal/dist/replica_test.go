package dist

import (
	"context"
	"errors"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fetch"
	"repro/internal/obs"
	"repro/internal/psl"
	"repro/internal/resilience"
)

// fastOpts keeps test replicas snappy: millisecond backoffs, small
// hops, and a breaker that re-probes quickly after opening.
func fastOpts() ReplicaOptions {
	return ReplicaOptions{
		Client:         &http.Client{Timeout: 5 * time.Second},
		PollInterval:   time.Millisecond,
		BackoffBase:    time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		MaxHop:         16,
		MaxAttempts:    3,
		BreakerOpenFor: 10 * time.Millisecond,
		Seed:           7,
	}
}

func TestReplicaBootstrapAndFollow(t *testing.T) {
	h := testHist(t, 60)
	o := NewOrigin(h)
	o.SetHead(10)
	ts := httptest.NewServer(o)
	defer ts.Close()

	rep := NewReplica(ts.URL, fastOpts())
	ctx := context.Background()

	l, seq, err := rep.Bootstrap(ctx, 1)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if seq != 1 || l.Serialize() != h.ListAt(1).Serialize() {
		t.Fatalf("bootstrap seq %d, list mismatch", seq)
	}
	if got := rep.Lag(); got != 9 {
		t.Fatalf("Lag after bootstrap = %d, want 9", got)
	}

	var swaps []int
	rep.OnSwap = func(_ *psl.List, seq int) { swaps = append(swaps, seq) }
	if err := rep.Poll(ctx); err != nil {
		t.Fatalf("Poll: %v", err)
	}
	if rep.CurrentSeq() != 10 || rep.Lag() != 0 {
		t.Fatalf("after poll: cur %d lag %d, want 10/0", rep.CurrentSeq(), rep.Lag())
	}
	if rep.state.list.Serialize() != h.ListAt(10).Serialize() {
		t.Fatalf("replica list differs from ListAt(10)")
	}
	if len(swaps) == 0 || swaps[len(swaps)-1] != 10 {
		t.Fatalf("swaps = %v, want last 10", swaps)
	}

	// Advance the head beyond one MaxHop: the replica chains hops.
	o.SetHead(59)
	if err := rep.Poll(ctx); err != nil {
		t.Fatalf("Poll to 59: %v", err)
	}
	if rep.CurrentSeq() != 59 || rep.Lag() != 0 {
		t.Fatalf("after poll: cur %d lag %d, want 59/0", rep.CurrentSeq(), rep.Lag())
	}
	if rep.Applied() < 4 {
		t.Fatalf("Applied = %d, want >= 4 hops for 49 seqs at MaxHop 16", rep.Applied())
	}
	if rep.state.list.Serialize() != h.ListAt(59).Serialize() {
		t.Fatalf("replica list differs from ListAt(59)")
	}
}

func TestReplicaRetriesTransientFailures(t *testing.T) {
	h := testHist(t, 40)
	o := NewOrigin(h)
	o.SetHead(5)
	inj := fetch.NewInjector(3, fetch.Fail5xx)
	ts := httptest.NewServer(inj.Wrap(o))
	defer ts.Close()

	rep := NewReplica(ts.URL, fastOpts())
	ctx := context.Background()
	if _, _, err := rep.Bootstrap(ctx, 0); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}

	o.SetHead(20)
	inj.FailNext(2) // manifest fetch fails, retried by the next poll
	var lastErr error
	deadline := time.Now().Add(10 * time.Second)
	for rep.CurrentSeq() != 20 && time.Now().Before(deadline) {
		lastErr = rep.Poll(ctx)
	}
	if rep.CurrentSeq() != 20 {
		t.Fatalf("never converged: cur %d, last err %v", rep.CurrentSeq(), lastErr)
	}
	if rep.Retries()+rep.pollErrors.Load() == 0 {
		t.Fatalf("no retries or poll errors recorded despite injection")
	}
}

func TestReplicaStallHitsClientTimeout(t *testing.T) {
	h := testHist(t, 40)
	o := NewOrigin(h)
	o.SetHead(3)
	inj := fetch.NewInjector(5, fetch.FailStall)
	inj.SetStall(2 * time.Second)
	ts := httptest.NewServer(inj.Wrap(o))
	defer ts.Close()

	opts := fastOpts()
	opts.Client = &http.Client{Timeout: 100 * time.Millisecond}
	rep := NewReplica(ts.URL, opts)
	ctx := context.Background()
	if _, _, err := rep.Bootstrap(ctx, 0); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	o.SetHead(10)
	inj.FailNext(1)
	start := time.Now()
	deadline := start.Add(15 * time.Second)
	for rep.CurrentSeq() != 10 && time.Now().Before(deadline) {
		_ = rep.Poll(ctx)
	}
	if rep.CurrentSeq() != 10 {
		t.Fatalf("never converged past a stalled request")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("convergence took %v; client timeout did not cut the stall", elapsed)
	}
}

func TestReplicaFallsBackToFullSync(t *testing.T) {
	h := testHist(t, 40)
	o := NewOrigin(h)
	o.SetHead(30)
	ts := httptest.NewServer(o)
	defer ts.Close()

	rep := NewReplica(ts.URL, fastOpts())
	ctx := context.Background()

	// Poison the replica's chain: claim to be at seq 10 while actually
	// holding version 5's rules. Every patch 10→x now fails fingerprint
	// verification, so the replica must fall back to a full sync.
	rep.SetState(h.ListAt(5), 10)
	if err := rep.Poll(ctx); err != nil {
		t.Fatalf("Poll: %v", err)
	}
	if rep.CurrentSeq() != 30 {
		t.Fatalf("cur = %d, want 30", rep.CurrentSeq())
	}
	if rep.state.list.Serialize() != h.ListAt(30).Serialize() {
		t.Fatalf("replica list differs from ListAt(30) after fallback")
	}
	if rep.VerifyFailures() == 0 {
		t.Fatalf("broken chain produced no verify failures")
	}
	if rep.Fallbacks() == 0 {
		t.Fatalf("broken chain did not trigger a full-blob fallback")
	}
}

func TestReplicaNeverSwapsCorruptBlobs(t *testing.T) {
	h := testHist(t, 40)
	o := NewOrigin(h)
	o.SetHead(5)
	inj := fetch.NewInjector(11, fetch.FailCorrupt)
	ts := httptest.NewServer(inj.Wrap(o))
	defer ts.Close()

	rep := NewReplica(ts.URL, fastOpts())
	ctx := context.Background()
	if _, _, err := rep.Bootstrap(ctx, 0); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	swapped := 0
	rep.OnSwap = func(_ *psl.List, seq int) {
		swapped++
		if got := rep.state.list.Fingerprint(); got != o.Chain().Fingerprint(seq) {
			t.Errorf("swap %d installed fingerprint %s, chain says %s", seq, got, o.Chain().Fingerprint(seq))
		}
	}

	// With every response corrupted, nothing may be swapped in.
	o.SetHead(20)
	inj.SetFailureRate(1.0)
	for i := 0; i < 3; i++ {
		if err := rep.Poll(ctx); err == nil {
			t.Fatalf("poll succeeded while all blobs corrupt")
		}
	}
	if swapped != 0 {
		t.Fatalf("replica swapped %d corrupt blobs in", swapped)
	}
	if rep.VerifyFailures() == 0 {
		t.Fatalf("corrupt blobs produced no verify failures")
	}

	// Heal the wire: convergence resumes.
	inj.SetFailureRate(0)
	if err := rep.Poll(ctx); err != nil {
		t.Fatalf("Poll after healing: %v", err)
	}
	if rep.CurrentSeq() != 20 || swapped == 0 {
		t.Fatalf("cur %d swapped %d after healing, want 20 and >0", rep.CurrentSeq(), swapped)
	}
}

func TestReplicaRunLoopStopsOnCancel(t *testing.T) {
	h := testHist(t, 40)
	o := NewOrigin(h)
	o.SetHead(8)
	ts := httptest.NewServer(o)
	defer ts.Close()

	rep := NewReplica(ts.URL, fastOpts())
	ctx, cancel := context.WithCancel(context.Background())
	if _, _, err := rep.Bootstrap(ctx, -1); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if rep.CurrentSeq() != 8 {
		t.Fatalf("Bootstrap(-1) landed on %d, want head 8", rep.CurrentSeq())
	}
	done := make(chan error, 1)
	go func() { done <- rep.Run(ctx) }()
	o.SetHead(25)
	deadline := time.Now().Add(10 * time.Second)
	for rep.Lag() != 0 || rep.CurrentSeq() != 25 {
		if time.Now().After(deadline) {
			t.Fatalf("run loop never converged: cur %d lag %d", rep.CurrentSeq(), rep.Lag())
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Run did not stop after cancel")
	}
}

// TestReplicaBackoffResetsAfterSuccessfulPoll pins the reset-on-success
// invariant at the replica level: a run of failed transfers escalates
// the shared backoff, and the first clean cycle returns it to zero so
// the next incident starts from the base delay again.
func TestReplicaBackoffResetsAfterSuccessfulPoll(t *testing.T) {
	h := testHist(t, 40)
	o := NewOrigin(h)
	o.SetHead(3)
	inj := fetch.NewInjector(9, fetch.FailCorrupt)
	// Corrupt only the blob endpoints: a corrupt manifest fails the
	// cycle outright (DecodeManifest rejects it), while this test is
	// about the retry ladder under failing transfers.
	mux := http.NewServeMux()
	mux.Handle(ManifestPath, o)
	mux.Handle(Prefix, inj.Wrap(o))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep := NewReplica(ts.URL, fastOpts())
	ctx := context.Background()
	if _, _, err := rep.Bootstrap(ctx, 0); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	o.SetHead(10)
	inj.SetFailureRate(1.0)
	if err := rep.Poll(ctx); err == nil {
		t.Fatal("poll succeeded on an all-corrupt wire")
	}
	if rep.backoff.Attempt() == 0 {
		t.Fatal("failed poll left the backoff at attempt 0; retries took no delay")
	}
	inj.SetFailureRate(0)
	if err := rep.Poll(ctx); err != nil {
		t.Fatalf("Poll after healing: %v", err)
	}
	if got := rep.backoff.Attempt(); got != 0 {
		t.Fatalf("backoff attempt = %d after a successful poll, want 0", got)
	}
}

// TestReplicaBreakerOpensOnTransportFailures: consecutive transport
// failures trip the origin breaker, polls fail fast with ErrOpen while
// it is open, and the first successful probe after BreakerOpenFor
// closes it again.
func TestReplicaBreakerOpensOnTransportFailures(t *testing.T) {
	h := testHist(t, 40)
	o := NewOrigin(h)
	o.SetHead(3)
	inj := fetch.NewInjector(5, fetch.Fail5xx)
	ts := httptest.NewServer(inj.Wrap(o))
	defer ts.Close()

	opts := fastOpts()
	opts.BreakerThreshold = 3
	opts.BreakerOpenFor = 25 * time.Millisecond
	rep := NewReplica(ts.URL, opts)
	ctx := context.Background()
	if _, _, err := rep.Bootstrap(ctx, 0); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}

	inj.SetFailureRate(1.0)
	for i := 0; i < 3; i++ {
		if err := rep.Poll(ctx); err == nil {
			t.Fatalf("poll %d succeeded through a 100%% 5xx wire", i)
		}
	}
	if got := rep.Breaker().State(); got != resilience.BreakerOpen {
		t.Fatalf("breaker %v after %d consecutive transport failures, want open", got, 3)
	}
	err := rep.Poll(ctx)
	if !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("poll through an open breaker = %v, want ErrOpen fast failure", err)
	}
	if rep.Breaker().FastFails() == 0 {
		t.Fatal("open breaker recorded no fast failures")
	}

	// Heal the wire and outwait the open window: the probe closes it.
	inj.SetFailureRate(0)
	o.SetHead(8)
	time.Sleep(30 * time.Millisecond)
	deadline := time.Now().Add(10 * time.Second)
	for rep.CurrentSeq() != 8 && time.Now().Before(deadline) {
		_ = rep.Poll(ctx)
	}
	if rep.CurrentSeq() != 8 {
		t.Fatalf("never converged after the breaker window: cur %d", rep.CurrentSeq())
	}
	if got := rep.Breaker().State(); got != resilience.BreakerClosed {
		t.Fatalf("breaker %v after recovery, want closed", got)
	}
}

// TestReplicaBudgetExhaustionEndsCycle: with a tiny retry budget, a
// poisoned wire exhausts it and the cycle ends with a budget error
// instead of retrying without bound.
func TestReplicaBudgetExhaustionEndsCycle(t *testing.T) {
	h := testHist(t, 40)
	o := NewOrigin(h)
	o.SetHead(3)
	inj := fetch.NewInjector(13, fetch.FailCorrupt)
	ts := httptest.NewServer(inj.Wrap(o))
	defer ts.Close()

	opts := fastOpts()
	opts.RetryBudget = 2
	opts.RetryDeposit = 0.01
	rep := NewReplica(ts.URL, opts)
	ctx := context.Background()
	if _, _, err := rep.Bootstrap(ctx, 0); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	o.SetHead(20)
	inj.SetFailureRate(1.0)
	var err error
	for i := 0; i < 5 && rep.RetryBudget().Denied() == 0; i++ {
		err = rep.Poll(ctx)
	}
	if rep.RetryBudget().Denied() == 0 {
		t.Fatalf("budget never denied a retry on an all-corrupt wire (last err %v)", err)
	}
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("poll error = %v, want retry-budget exhaustion", err)
	}
	if swapped := rep.CurrentSeq(); swapped != 0 {
		t.Fatalf("replica advanced to %d through corrupt blobs", swapped)
	}
}

// TestReplicaPersistsAndRestoresState: with a StateDir, every verified
// install lands on disk and a fresh replica resumes from the persisted
// seq — patching forward from there, never re-downloading a full blob.
func TestReplicaPersistsAndRestoresState(t *testing.T) {
	h := testHist(t, 40)
	o := NewOrigin(h)
	o.SetHead(12)
	ts := httptest.NewServer(o)
	defer ts.Close()

	dir := t.TempDir()
	opts := fastOpts()
	opts.StateDir = dir
	rep := NewReplica(ts.URL, opts)
	ctx := context.Background()
	if _, _, err := rep.Bootstrap(ctx, 0); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if err := rep.Poll(ctx); err != nil {
		t.Fatalf("Poll: %v", err)
	}
	if rep.CurrentSeq() != 12 {
		t.Fatalf("cur = %d, want 12", rep.CurrentSeq())
	}
	if rep.Persisted() == 0 {
		t.Fatal("no snapshots persisted despite StateDir")
	}

	// "Crash": build a brand-new replica over the same dir.
	rep2 := NewReplica(ts.URL, opts)
	l, seq, err := rep2.RestoreState()
	if err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if seq != 12 || rep2.CurrentSeq() != 12 {
		t.Fatalf("restored seq %d (cur %d), want 12", seq, rep2.CurrentSeq())
	}
	if got, want := l.Fingerprint(), o.Chain().Fingerprint(12); got != want {
		t.Fatalf("restored fingerprint %s, chain says %s", got, want)
	}

	// Advance the origin: the restarted replica must patch forward from
	// its persisted seq, with zero full-blob transfers.
	o.SetHead(25)
	if err := rep2.Poll(ctx); err != nil {
		t.Fatalf("Poll after restore: %v", err)
	}
	if rep2.CurrentSeq() != 25 || rep2.FullSyncs() != 0 {
		t.Fatalf("after restore: cur %d fullSyncs %d, want 25 and 0", rep2.CurrentSeq(), rep2.FullSyncs())
	}
	if rep2.state.list.Serialize() != h.ListAt(25).Serialize() {
		t.Fatalf("restored replica list differs from ListAt(25)")
	}
}

func TestReplicaRestoreStateErrors(t *testing.T) {
	opts := fastOpts()
	rep := NewReplica("http://unused.invalid", opts)
	if _, _, err := rep.RestoreState(); err == nil {
		t.Fatal("RestoreState without a StateDir succeeded")
	}

	opts.StateDir = t.TempDir()
	rep = NewReplica("http://unused.invalid", opts)
	if _, _, err := rep.RestoreState(); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("RestoreState on an empty dir = %v, want fs.ErrNotExist", err)
	}
}

func TestReplicaMetricsExposition(t *testing.T) {
	h := testHist(t, 40)
	o := NewOrigin(h)
	o.SetHead(6)
	ts := httptest.NewServer(o)
	defer ts.Close()

	rep := NewReplica(ts.URL, fastOpts())
	reg := obs.NewRegistry()
	rep.RegisterMetrics(reg)
	ctx := context.Background()
	if _, _, err := rep.Bootstrap(ctx, 2); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if err := rep.Poll(ctx); err != nil {
		t.Fatalf("Poll: %v", err)
	}

	exp := reg.Render()
	for _, fam := range []string{
		"psl_dist_replica_lag_seqs",
		"psl_dist_replica_polls_total",
		"psl_dist_replica_poll_errors_total",
		"psl_dist_replica_patches_applied_total",
		"psl_dist_replica_bytes_total",
		"psl_dist_replica_verify_failures_total",
		"psl_dist_replica_fallback_syncs_total",
		"psl_dist_replica_full_syncs_total",
		"psl_dist_replica_retries_total",
		"psl_dist_replica_state_persisted_total",
		"psl_dist_replica_state_persist_errors_total",
		"psl_dist_replica_apply_duration_seconds",
		`psl_resilience_breaker_state{breaker="dist_origin"}`,
		`psl_resilience_retry_budget_tokens{budget="dist_replica"}`,
	} {
		if !strings.Contains(exp, fam) {
			t.Errorf("exposition missing %s", fam)
		}
	}
	if _, err := obs.ValidateExposition(strings.NewReader(exp)); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
}
