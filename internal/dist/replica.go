package dist

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"

	"repro/internal/faultfs"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/psl"
	"repro/internal/resilience"
)

// maxBlobBytes bounds any single response body the replica will read;
// the full 9.4k-rule list encodes to ~170KB, so 16MB is generous.
const maxBlobBytes = 16 << 20

// ReplicaOptions tunes a Replica. Zero values get defaults.
type ReplicaOptions struct {
	// Client performs the HTTP requests. Default: a client with a
	// 30-second timeout (never the zero-timeout http.DefaultClient — a
	// stalled origin must not hang the poll loop forever).
	Client *http.Client
	// PollInterval is the steady-state manifest poll cadence, jittered
	// ±20% per cycle. Default 1s.
	PollInterval time.Duration
	// RequestTimeout bounds one transfer end to end via the request
	// context, and is propagated to the origin through the resilience
	// deadline header so a loaded origin can shed work the replica has
	// already abandoned. Default 10s.
	RequestTimeout time.Duration
	// BackoffBase and BackoffMax bound the jittered exponential backoff
	// between retries of a failed transfer. Defaults 100ms and 5s.
	BackoffBase, BackoffMax time.Duration
	// MaxHop caps how many versions one patch spans; catching up from
	// far behind takes several hops. Default 64.
	MaxHop int
	// MaxAttempts is how many consecutive failed hop attempts trigger
	// the full-blob fallback. Default 4.
	MaxAttempts int
	// BreakerThreshold and BreakerOpenFor tune the circuit breaker in
	// front of the origin: after BreakerThreshold consecutive
	// transport-level failures the replica fails fast for BreakerOpenFor
	// before probing again. Only transport failures count — a corrupt
	// blob delivered with a 200 is the origin lying, not the wire being
	// down, and must not block the full-sync recovery path. Defaults 5
	// and 1s.
	BreakerThreshold int
	BreakerOpenFor   time.Duration
	// RetryBudget and RetryDeposit tune the token-bucket retry budget:
	// every retry spends one token, every successful transfer earns
	// RetryDeposit (capped at RetryBudget). An exhausted budget ends the
	// cycle instead of hammering a struggling origin; the next poll
	// starts fresh. Defaults 16 and 0.5.
	RetryBudget  float64
	RetryDeposit float64
	// StateDir, when non-empty, durably persists every verified snapshot
	// (write-temp → fsync → atomic-rename, see SaveState) so a restarted
	// replica can resume from its last verified seq via RestoreState
	// instead of a full bootstrap. Persistence failures are counted,
	// never block a swap.
	StateDir string
	// FS, when set, is the filesystem behind StateDir persistence —
	// crash-consistency tests hand in a faultfs.MemFS here and torture
	// the replica's save/restore path without touching a real disk. Nil
	// means the real OS wrapped with the dist.state / dist.blob
	// failpoint sites.
	FS faultfs.FS
	// FetchBlobs opts in to pulling the upstream's compiled matcher blob
	// (/dist/blob/{seq}) after each verified install, handing it to
	// OnInstall so the serving layer can swap versions without
	// recompiling. The fetch is strictly best-effort and fully verified:
	// an upstream without the endpoint, a transport error, or a blob
	// that fails any verification step just yields a nil matcher (the
	// consumer compiles locally) — it never delays the install, trips
	// the circuit breaker, or spends the retry budget.
	FetchBlobs bool
	// Seed drives poll and backoff jitter. Default 1.
	Seed int64
	// Ring, when set, retains a client-side TraceRecord for every
	// upstream request the replica makes (manifest, patch, full, blob),
	// carrying the same trace ID the upstream's server-side ring logs —
	// the two halves of one hop in /debug/traces.
	Ring *obs.TraceRing
	// Journal, when set, records the per-seq lifecycle events the
	// replica observes: published (from a manifest's PublishedAt, on
	// the origin's clock), fetched, verified, and installed.
	Journal *obs.Journal
}

func (o ReplicaOptions) withDefaults() ReplicaOptions {
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.PollInterval <= 0 {
		o.PollInterval = time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.MaxHop <= 0 {
		o.MaxHop = 64
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerOpenFor <= 0 {
		o.BreakerOpenFor = time.Second
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 16
	}
	if o.RetryDeposit <= 0 {
		o.RetryDeposit = 0.5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// replicaState is the replica's current verified snapshot.
type replicaState struct {
	list *psl.List
	seq  int
	fp   string
}

// Replica follows an origin: it polls the manifest (with ETag
// short-circuiting), pulls patch chains toward the advertised head,
// verifies the fingerprint at every hop, and falls back to a full-blob
// sync after repeated failures (broken chain, verification mismatch, or
// transport errors alike). Every list handed to OnSwap has had its
// fingerprint verified against the blob that produced it — a replica
// never swaps in a list the origin didn't cryptographically promise.
//
// Failure handling is built from the shared resilience primitives: a
// circuit breaker on transport errors, a token-bucket retry budget, and
// capped jittered backoff that resets after a successful poll. With a
// StateDir configured, every verified install is also persisted
// crash-safely so a restart resumes from the last verified seq.
//
// Poll, Bootstrap, and Run must be used from one goroutine; Lag,
// CurrentSeq, and the counters are safe to read from any goroutine.
type Replica struct {
	origin string
	opts   ReplicaOptions

	// OnSwap, if set, is invoked after each verified snapshot install
	// (not for Bootstrap, whose result the caller installs). Set before
	// calling Run.
	OnSwap func(l *psl.List, seq int)

	// OnVerified, if set, is invoked for every verified install —
	// including the one Bootstrap performs — with the fingerprint the
	// blob was verified against. It runs before OnSwap; relays use it to
	// extend their retained snapshot window without recomputing the
	// fingerprint. Set before calling Bootstrap or Run.
	OnVerified func(l *psl.List, seq int, fp string)

	// OnInstall, if set, supersedes OnSwap as the serving-layer hook
	// (not for Bootstrap, whose result the caller installs): it carries
	// the verified fingerprint and, with FetchBlobs, the upstream's
	// pre-compiled matcher for the version — nil when the blob was
	// absent or failed verification, in which case the consumer compiles
	// (or reuses, when the fingerprint is unchanged) locally. It runs
	// after OnVerified and before OnSwap. Set before calling Run.
	OnInstall func(l *psl.List, seq int, fp string, m psl.Matcher)

	state        replicaState
	curSeq       atomic.Int64
	headSeq      atomic.Int64
	manifestETag string
	headFP       string
	minSeq       int // oldest seq the upstream can serve patches from
	depth        atomic.Int32

	// pubTimes remembers the publish time each head seq was advertised
	// with, so a relay's own manifest can carry it downstream.
	pubMu    sync.Mutex
	pubTimes map[int]time.Time

	rng     *rand.Rand
	backoff *resilience.Backoff
	breaker *resilience.Breaker
	budget  *resilience.Budget

	// stateFS / matcherFS back StateDir persistence: the package
	// defaults (instrumented OS) unless ReplicaOptions.FS overrides
	// them, in which case the override is wrapped with the same
	// failpoint sites so specs behave identically on both.
	stateFS   faultfs.FS
	matcherFS faultfs.FS

	polls, pollErrors obs.Counter
	applied           obs.Counter
	patchBytes        obs.Counter
	fullBytes         obs.Counter
	verifyFailures    obs.Counter
	fallbacks         obs.Counter
	fullSyncs         obs.Counter
	compactProbes     obs.Counter
	compactHits       obs.Counter
	retries           obs.Counter
	persisted         obs.Counter
	persistErrors     obs.Counter
	applyDur          *obs.Histogram

	blobHits      obs.Counter // blob fetched, fully verified, handed to OnInstall
	blobMisses    obs.Counter // endpoint absent or transport failure
	blobInvalid   obs.Counter // blob fetched but failed verification
	blobPersisted obs.Counter // verified blobs durably written to StateDir
}

// NewReplica builds a replica for the origin at base URL (e.g.
// "http://127.0.0.1:8353"; the /dist/ prefix is appended internally).
// It starts empty: seed it with Bootstrap, RestoreState, or SetState
// before Run.
func NewReplica(origin string, opts ReplicaOptions) *Replica {
	opts = opts.withDefaults()
	r := &Replica{
		origin:   origin,
		opts:     opts,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		backoff:  resilience.NewBackoff(opts.BackoffBase, opts.BackoffMax, opts.Seed),
		breaker:  resilience.NewBreaker(resilience.BreakerOptions{FailureThreshold: opts.BreakerThreshold, OpenFor: opts.BreakerOpenFor}),
		budget:   resilience.NewBudget(opts.RetryBudget, opts.RetryDeposit),
		applyDur: obs.NewHistogram(nil),
	}
	if opts.FS != nil {
		r.stateFS = faultfs.Instrument(opts.FS, "dist.state")
		r.matcherFS = faultfs.Instrument(opts.FS, "dist.blob")
	} else {
		r.stateFS, r.matcherFS = stateFS, blobFS
	}
	r.curSeq.Store(-1)
	r.headSeq.Store(-1)
	return r
}

// SetState installs a known snapshot (e.g. a locally embedded list) as
// the replica's starting point.
func (r *Replica) SetState(l *psl.List, seq int) {
	r.state = replicaState{list: l, seq: seq, fp: l.Fingerprint()}
	r.curSeq.Store(int64(seq))
}

// RestoreState loads the snapshot persisted in StateDir (checksum and
// fingerprint verified) and installs it as the replica's starting
// point, without invoking OnSwap. A missing state file surfaces as
// fs.ErrNotExist so callers can fall back to Bootstrap.
func (r *Replica) RestoreState() (*psl.List, int, error) {
	if r.opts.StateDir == "" {
		return nil, 0, fmt.Errorf("dist: RestoreState without a StateDir")
	}
	l, seq, err := LoadStateFS(r.stateFS, r.opts.StateDir)
	if err != nil {
		return nil, 0, err
	}
	r.SetState(l, seq)
	return l, seq, nil
}

// CurrentSeq reports the last installed version, or -1 before any.
func (r *Replica) CurrentSeq() int64 { return r.curSeq.Load() }

// Lag reports how many versions the replica trails the origin's last
// advertised head — the replication-lag gauge. Zero when caught up or
// when no manifest has been seen yet.
func (r *Replica) Lag() int64 {
	head, cur := r.headSeq.Load(), r.curSeq.Load()
	if head < 0 || cur >= head {
		return 0
	}
	return head - cur
}

// Counter accessors for tests and health reporting.

// Polls reports replication cycles attempted (Bootstrap included).
func (r *Replica) Polls() uint64 { return r.polls.Load() }

// PollErrors reports cycles that ended in a transport or protocol
// error.
func (r *Replica) PollErrors() uint64 { return r.pollErrors.Load() }

// Applied reports patches successfully applied and installed.
func (r *Replica) Applied() uint64 { return r.applied.Load() }

// Fallbacks reports full-blob syncs taken after patching failed.
func (r *Replica) Fallbacks() uint64 { return r.fallbacks.Load() }

// FullSyncs reports all full-blob syncs performed (bootstrap, empty
// start, and fallback alike) — the expensive transfers a persisted
// state dir exists to avoid.
func (r *Replica) FullSyncs() uint64 { return r.fullSyncs.Load() }

// CompactProbes reports single compacted catch-up patches attempted
// after bounded hops failed, the last patch-shaped step before a
// full-blob fallback.
func (r *Replica) CompactProbes() uint64 { return r.compactProbes.Load() }

// CompactHits reports compaction probes that succeeded, each one a full
// blob the fleet never had to move.
func (r *Replica) CompactHits() uint64 { return r.compactHits.Load() }

// UpstreamDepth reports the upstream's advertised distance from the
// authoritative origin (0 = following the origin directly), from the
// last decoded manifest. A relay advertises this plus one downstream.
func (r *Replica) UpstreamDepth() int { return int(r.depth.Load()) }

// VerifyFailures reports blobs rejected by checksum, decode, or
// fingerprint verification.
func (r *Replica) VerifyFailures() uint64 { return r.verifyFailures.Load() }

// Retries reports failed transfer attempts that were retried.
func (r *Replica) Retries() uint64 { return r.retries.Load() }

// Persisted reports verified snapshots durably written to StateDir.
func (r *Replica) Persisted() uint64 { return r.persisted.Load() }

// BlobHits reports compiled matcher blobs fetched and fully verified.
func (r *Replica) BlobHits() uint64 { return r.blobHits.Load() }

// BlobMisses reports blob fetches that failed at the transport layer or
// found no blob upstream (a pre-blob origin answering 404).
func (r *Replica) BlobMisses() uint64 { return r.blobMisses.Load() }

// BlobInvalid reports fetched blobs rejected by envelope, structural,
// or fingerprint verification — each one a fall-back to local compile.
func (r *Replica) BlobInvalid() uint64 { return r.blobInvalid.Load() }

// PersistErrors reports snapshot persistence failures (the swap still
// proceeded; only durability was lost).
func (r *Replica) PersistErrors() uint64 { return r.persistErrors.Load() }

// Breaker exposes the origin circuit breaker for health reporting.
func (r *Replica) Breaker() *resilience.Breaker { return r.breaker }

// RetryBudget exposes the retry budget for health reporting.
func (r *Replica) RetryBudget() *resilience.Budget { return r.budget }

// RegisterMetrics attaches the replica's metric families to a registry.
func (r *Replica) RegisterMetrics(reg *obs.Registry) {
	reg.MustRegister("psl_dist_replica_lag_seqs", "Versions the replica trails the origin head.",
		nil, obs.GaugeFunc(func() float64 { return float64(r.Lag()) }))
	reg.MustRegister("psl_dist_replica_polls_total", "Manifest polls attempted.", nil, &r.polls)
	reg.MustRegister("psl_dist_replica_poll_errors_total", "Polls that ended in a transport or protocol error.", nil, &r.pollErrors)
	reg.MustRegister("psl_dist_replica_patches_applied_total", "Patches verified and installed.", nil, &r.applied)
	reg.MustRegister("psl_dist_replica_bytes_total", "Blob bytes fetched, by transfer kind.",
		obs.Labels{{"kind", "patch"}}, &r.patchBytes)
	reg.MustRegister("psl_dist_replica_bytes_total", "Blob bytes fetched, by transfer kind.",
		obs.Labels{{"kind", "full"}}, &r.fullBytes)
	reg.MustRegister("psl_dist_replica_verify_failures_total", "Blobs rejected by checksum or fingerprint verification.", nil, &r.verifyFailures)
	reg.MustRegister("psl_dist_replica_fallback_syncs_total", "Full-blob syncs taken after patch chains failed.", nil, &r.fallbacks)
	reg.MustRegister("psl_dist_replica_full_syncs_total", "All full-blob syncs performed (bootstrap, empty start, fallback).", nil, &r.fullSyncs)
	reg.MustRegister("psl_dist_replica_compact_probes_total", "Single compacted catch-up patches attempted after bounded hops failed.", nil, &r.compactProbes)
	reg.MustRegister("psl_dist_replica_compact_probe_hits_total", "Compaction probes that succeeded, avoiding a full-blob sync.", nil, &r.compactHits)
	reg.MustRegister("psl_dist_replica_retries_total", "Failed transfer attempts that were retried.", nil, &r.retries)
	reg.MustRegister("psl_dist_replica_state_persisted_total", "Verified snapshots durably persisted to the state dir.", nil, &r.persisted)
	reg.MustRegister("psl_dist_replica_state_persist_errors_total", "Snapshot persistence failures (swap proceeded, durability lost).", nil, &r.persistErrors)
	reg.MustRegister("psl_dist_replica_apply_duration_seconds", "Time to decode, verify, and apply one blob.", nil, r.applyDur)
	reg.MustRegister("psl_dist_blob_fetches_total", "Compiled matcher blob fetches, by outcome.",
		obs.Labels{{"result", "hit"}}, &r.blobHits)
	reg.MustRegister("psl_dist_blob_fetches_total", "Compiled matcher blob fetches, by outcome.",
		obs.Labels{{"result", "miss"}}, &r.blobMisses)
	reg.MustRegister("psl_dist_blob_fetches_total", "Compiled matcher blob fetches, by outcome.",
		obs.Labels{{"result", "invalid"}}, &r.blobInvalid)
	reg.MustRegister("psl_dist_blob_persisted_total", "Verified matcher blobs durably persisted to the state dir.",
		nil, &r.blobPersisted)
	r.breaker.RegisterMetrics(reg, "dist_origin")
	r.budget.RegisterMetrics(reg, "dist_replica")
}

// get fetches one dist path, enforcing the body size cap. A non-2xx
// status, oversized body, or transport error (including mid-body
// truncation) is returned as an error. Every exchange runs under the
// origin circuit breaker — an open circuit fails fast with ErrOpen —
// and under RequestTimeout, propagated to the origin via the deadline
// header. Transport-level outcomes feed the breaker; successful
// transfers (including 304s) also replenish the retry budget.
func (r *Replica) get(ctx context.Context, path, etag string) (body []byte, gotETag string, status int, err error) {
	ct := r.requestTrace(ctx)
	defer func() { r.recordClientTrace(ct, path, status, int64(len(body)), err) }()
	gen, ok := r.breaker.Allow()
	if !ok {
		return nil, "", 0, fmt.Errorf("dist: GET %s: %w", path, resilience.ErrOpen)
	}
	ctx, cancel := context.WithTimeout(ctx, r.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.origin+path, nil)
	if err != nil {
		r.breaker.Record(gen, err)
		return nil, "", 0, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	obs.InjectTrace(req, ct)
	resilience.PropagateDeadline(req)
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		r.breaker.Record(gen, err)
		return nil, "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		r.breaker.Record(gen, nil)
		r.budget.OnSuccess()
		return nil, etag, resp.StatusCode, nil
	}
	if resp.StatusCode != http.StatusOK {
		// Drain a little so the connection can be reused, then fail.
		_, _ = io.CopyN(io.Discard, resp.Body, 4096)
		err = fmt.Errorf("dist: GET %s: status %d", path, resp.StatusCode)
		r.breaker.Record(gen, err)
		return nil, "", resp.StatusCode, err
	}
	body, err = io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes+1))
	if err != nil {
		err = fmt.Errorf("dist: GET %s: %w", path, err)
		r.breaker.Record(gen, err)
		return nil, "", resp.StatusCode, err
	}
	if len(body) > maxBlobBytes {
		err = fmt.Errorf("dist: GET %s: body exceeds %d bytes", path, maxBlobBytes)
		r.breaker.Record(gen, err)
		return nil, "", resp.StatusCode, err
	}
	r.breaker.Record(gen, nil)
	r.budget.OnSuccess()
	return body, resp.Header.Get("ETag"), resp.StatusCode, nil
}

// requestTrace mints the trace one outbound request carries: a child
// span of the poll cycle's trace when the context has one (every
// request of one cycle then shares the cycle's trace ID — the ID the
// upstream's access log and trace ring record), a fresh root otherwise.
func (r *Replica) requestTrace(ctx context.Context) *obs.Trace {
	if parent := obs.TraceFrom(ctx); parent != nil {
		return obs.ContinueTrace(parent.TraceID, parent.SpanID, parent.ID)
	}
	return obs.NewTrace("")
}

// recordClientTrace retains one completed upstream exchange in the
// configured trace ring; a nil ring drops it.
func (r *Replica) recordClientTrace(ct *obs.Trace, path string, status int, bytes int64, err error) {
	if r.opts.Ring == nil {
		return
	}
	rec := &obs.TraceRecord{
		Time:     ct.Start,
		Kind:     "client",
		ReqID:    ct.ID,
		TraceID:  ct.TraceID,
		SpanID:   ct.SpanID,
		ParentID: ct.ParentID,
		Method:   http.MethodGet,
		Path:     path,
		Status:   status,
		Bytes:    bytes,
		Duration: time.Since(ct.Start),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	r.opts.Ring.Record(rec)
}

// FetchMatcherBlob pulls /dist/blob/{seq} from the upstream and runs
// the full verification chain (UnpackMatcherBlob) against the expected
// seq and verified fingerprint, persisting the envelope to StateDir on
// success so a restart reuses it without recompiling. It returns nil on
// any failure — missing endpoint, transport error, corrupt or
// mismatched blob — because the caller always has a correct fallback:
// compile the verified rules locally.
//
// Unlike get, this path deliberately bypasses the circuit breaker and
// retry budget. The breaker protects the replication channel, and a
// blob failure is not a replication failure: the rules already arrived
// and verified, only the optional compile shortcut is unavailable. A
// pre-blob upstream answering 404 forever must not open the breaker and
// block real syncs.
func (r *Replica) FetchMatcherBlob(ctx context.Context, seq int, fp string) *psl.PackedMatcher {
	path := fmt.Sprintf("%s%d", blobPrefix, seq)
	ct := r.requestTrace(ctx)
	var status int
	var got int64
	var terr error
	defer func() { r.recordClientTrace(ct, path, status, got, terr) }()
	ctx, cancel := context.WithTimeout(ctx, r.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.origin+path, nil)
	if err != nil {
		terr = err
		r.blobMisses.Add(1)
		return nil
	}
	obs.InjectTrace(req, ct)
	resilience.PropagateDeadline(req)
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		terr = err
		r.blobMisses.Add(1)
		return nil
	}
	defer resp.Body.Close()
	status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		_, _ = io.CopyN(io.Discard, resp.Body, 4096)
		r.blobMisses.Add(1)
		return nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes+1))
	got = int64(len(body))
	if err != nil || len(body) > maxBlobBytes {
		terr = err
		r.blobMisses.Add(1)
		return nil
	}
	pm, err := UnpackMatcherBlob(body, seq, fp)
	if err != nil {
		r.blobInvalid.Add(1)
		return nil
	}
	r.blobHits.Add(1)
	if r.opts.StateDir != "" {
		if err := SaveMatcherBlobFS(r.matcherFS, r.opts.StateDir, body); err != nil {
			r.persistErrors.Add(1)
		} else {
			r.blobPersisted.Add(1)
		}
	}
	return pm
}

// Poll performs one replication cycle: refresh the manifest, then chase
// the head if behind. Transfer errors inside the cycle are retried —
// budget permitting — with the shared jittered backoff and, after
// MaxAttempts consecutive failures of a hop, a full-blob fallback; Poll
// only returns an error once the cycle cannot make progress (or ctx
// ends). A cycle that ends cleanly resets the backoff schedule.
func (r *Replica) Poll(ctx context.Context) error {
	r.polls.Add(1)
	if obs.TraceFrom(ctx) == nil {
		// Root the cycle: every request it makes (manifest, patches,
		// blobs) becomes a child span sharing one trace ID, which is the
		// ID the upstream's access log and trace ring see arriving.
		ctx = obs.WithTrace(ctx, obs.NewTrace(""))
	}
	body, etag, status, err := r.get(ctx, ManifestPath, r.manifestETag)
	if err != nil {
		r.pollErrors.Add(1)
		return err
	}
	if status != http.StatusNotModified {
		m, err := DecodeManifest(body)
		if err != nil {
			r.pollErrors.Add(1)
			return err
		}
		r.manifestETag = etag
		r.headFP = m.Fingerprint
		r.minSeq = m.MinSeq
		r.depth.Store(int32(m.Depth))
		r.headSeq.Store(int64(m.Seq))
		r.notePublished(m)
	}
	if err := r.syncToHead(ctx); err != nil {
		r.pollErrors.Add(1)
		return err
	}
	r.backoff.Reset()
	return nil
}

// maxPubTimes bounds the publish-time memory; heads arrive one at a
// time, so a few hundred covers any realistic catch-up window.
const maxPubTimes = 256

// notePublished remembers when the upstream said a head seq was
// published — journalled as the timeline's first event (on the
// origin's clock, carried through every tier by the manifest) and kept
// for this node's own manifest when it relays.
func (r *Replica) notePublished(m Manifest) {
	if m.PublishedAt.IsZero() {
		return
	}
	r.opts.Journal.RecordAt(m.Seq, obs.StagePublished, m.PublishedAt)
	r.pubMu.Lock()
	defer r.pubMu.Unlock()
	if r.pubTimes == nil {
		r.pubTimes = make(map[int]time.Time)
	}
	if _, ok := r.pubTimes[m.Seq]; !ok && len(r.pubTimes) >= maxPubTimes {
		lowest := m.Seq
		for s := range r.pubTimes {
			if s < lowest {
				lowest = s
			}
		}
		delete(r.pubTimes, lowest)
	}
	r.pubTimes[m.Seq] = m.PublishedAt
}

// PublishedAt reports the publish time the upstream advertised for a
// seq, ok=false when the manifest carried none (a pre-PublishedAt
// upstream) or the seq has aged out.
func (r *Replica) PublishedAt(seq int) (time.Time, bool) {
	r.pubMu.Lock()
	defer r.pubMu.Unlock()
	at, ok := r.pubTimes[seq]
	return at, ok
}

// syncToHead walks the replica from its current version to the
// advertised head, one bounded patch hop at a time, escalating through
// the fallback ladder when hops fail:
//
//  1. bounded hops: patch cur→min(cur+MaxHop, head), chained;
//  2. compaction probe: after MaxAttempts failed hops, one request for
//     the single compacted patch cur→head. A relay that evicted the
//     intermediate versions a hop chain needs can still coalesce
//     everything it retains into one delta, and even a patch spanning
//     far more than MaxHop versions is almost always a fraction of the
//     full blob — the probe is what keeps a laggy edge on the cheap
//     path instead of silently paying for a full sync;
//  3. full-blob sync, the recovery of last resort.
//
// An empty replica, or one whose seq has fallen below the upstream's
// advertised min_seq retention window, skips straight to the full sync:
// no patch can serve it.
func (r *Replica) syncToHead(ctx context.Context) error {
	for {
		head := int(r.headSeq.Load())
		if r.state.list != nil && r.state.seq >= head {
			return nil
		}
		attempts := 0
		probed := false
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			var err error
			switch {
			case r.state.list == nil || r.state.seq < r.minSeq:
				err = r.fullSync(ctx, head)
			case attempts < r.opts.MaxAttempts:
				to := min(r.state.seq+r.opts.MaxHop, head)
				err = r.applyHop(ctx, r.state.seq, to)
			case !probed && head > r.state.seq+r.opts.MaxHop:
				// The bounded hop kept failing; before paying for a full
				// blob, ask for one compacted patch covering the whole
				// gap. (When the gap fits in MaxHop the hop above already
				// requested exactly this span, so the probe is skipped.)
				probed = true
				r.compactProbes.Add(1)
				if err = r.applyHop(ctx, r.state.seq, head); err == nil {
					r.compactHits.Add(1)
				}
			default:
				r.fallbacks.Add(1)
				err = r.fullSync(ctx, head)
			}
			if err == nil {
				r.backoff.Reset()
				break
			}
			attempts++
			if attempts > 2*r.opts.MaxAttempts+1 {
				return fmt.Errorf("dist: giving up after %d attempts: %w", attempts, err)
			}
			if !r.budget.Withdraw() {
				return fmt.Errorf("dist: retry budget exhausted after %d attempts: %w", attempts, err)
			}
			r.retries.Add(1)
			if !r.backoff.Sleep(ctx) {
				return ctx.Err()
			}
		}
	}
}

// applyHop fetches and applies the patch cur→to. The patch must decode
// (checksum, canonical rules), match the hop endpoints, and apply
// cleanly from the current fingerprint to its promised target, or the
// hop fails without touching the installed state.
func (r *Replica) applyHop(ctx context.Context, cur, to int) error {
	path := fmt.Sprintf("%s%d/%d", patchPrefix, cur, to)
	body, _, _, err := r.get(ctx, path, "")
	if err != nil {
		return err
	}
	r.opts.Journal.Record(to, obs.StageFetched)
	start := time.Now()
	p, err := DecodePatch(body)
	if err != nil {
		r.verifyFailures.Add(1)
		return err
	}
	if p.FromSeq != cur || p.ToSeq != to {
		r.verifyFailures.Add(1)
		return fmt.Errorf("%w: patch covers %d→%d, requested %d→%d", ErrCorrupt, p.FromSeq, p.ToSeq, cur, to)
	}
	l, err := p.Apply(r.state.list, r.state.fp)
	if err != nil {
		r.verifyFailures.Add(1)
		return err
	}
	r.applyDur.Observe(time.Since(start))
	r.patchBytes.Add(uint64(len(body)))
	r.applied.Add(1)
	r.opts.Journal.Record(p.ToSeq, obs.StageVerified)
	r.install(ctx, l, p.ToSeq, p.ToFP)
	return nil
}

// fullSync replaces the replica's state with the origin's full blob of
// version seq, the recovery path when patching cannot proceed.
func (r *Replica) fullSync(ctx context.Context, seq int) error {
	body, _, _, err := r.get(ctx, fmt.Sprintf("%s%d", fullPrefix, seq), "")
	if err != nil {
		return err
	}
	r.opts.Journal.Record(seq, obs.StageFetched)
	start := time.Now()
	f, err := DecodeFull(body)
	if err != nil {
		r.verifyFailures.Add(1)
		return err
	}
	if f.Seq != seq {
		r.verifyFailures.Add(1)
		return fmt.Errorf("%w: full blob is version %d, requested %d", ErrCorrupt, f.Seq, seq)
	}
	l, err := f.List()
	if err != nil {
		r.verifyFailures.Add(1)
		return err
	}
	r.applyDur.Observe(time.Since(start))
	r.fullBytes.Add(uint64(len(body)))
	r.fullSyncs.Add(1)
	r.opts.Journal.Record(f.Seq, obs.StageVerified)
	r.install(ctx, l, f.Seq, f.FP)
	return nil
}

// install publishes a verified snapshot: persist (when configured),
// then callbacks, then the atomics that feed Lag. A persistence failure
// is counted but never blocks the swap — serving fresh data beats
// durability. When FetchBlobs is on and an OnInstall consumer is
// wired, the upstream's pre-compiled matcher is fetched (best-effort,
// fully verified, breaker-free) between the relay hook and the swap.
func (r *Replica) install(ctx context.Context, l *psl.List, seq int, fp string) {
	r.state = replicaState{list: l, seq: seq, fp: fp}
	if r.opts.StateDir != "" {
		if err := SaveStateFS(r.stateFS, r.opts.StateDir, l, seq); err != nil {
			r.persistErrors.Add(1)
		} else {
			r.persisted.Add(1)
		}
	}
	if r.OnVerified != nil {
		r.OnVerified(l, seq, fp)
	}
	if r.OnInstall != nil {
		var m psl.Matcher
		if r.opts.FetchBlobs {
			if pm := r.FetchMatcherBlob(ctx, seq, fp); pm != nil {
				m = pm
			}
		}
		r.OnInstall(l, seq, fp, m)
	}
	if r.OnSwap != nil {
		r.OnSwap(l, seq)
	}
	r.curSeq.Store(int64(seq))
	r.opts.Journal.Record(seq, obs.StageInstalled)
}

// Bootstrap fetches the manifest and performs an initial full-blob sync
// of fromSeq (or the advertised head when fromSeq < 0), returning the
// verified list without invoking OnSwap: the caller typically builds
// its serving state from the return value. One attempt; callers retry.
func (r *Replica) Bootstrap(ctx context.Context, fromSeq int) (*psl.List, int, error) {
	r.polls.Add(1)
	if obs.TraceFrom(ctx) == nil {
		ctx = obs.WithTrace(ctx, obs.NewTrace(""))
	}
	body, etag, _, err := r.get(ctx, ManifestPath, "")
	if err != nil {
		r.pollErrors.Add(1)
		return nil, 0, err
	}
	m, err := DecodeManifest(body)
	if err != nil {
		r.pollErrors.Add(1)
		return nil, 0, err
	}
	r.notePublished(m)
	seq := fromSeq
	if seq < 0 || seq > m.Seq {
		seq = m.Seq
	}
	if seq < m.MinSeq {
		seq = m.MinSeq
	}
	onSwap, onInstall := r.OnSwap, r.OnInstall
	r.OnSwap, r.OnInstall = nil, nil
	err = r.fullSync(ctx, seq)
	r.OnSwap, r.OnInstall = onSwap, onInstall
	if err != nil {
		r.pollErrors.Add(1)
		return nil, 0, err
	}
	r.manifestETag = etag
	r.headFP = m.Fingerprint
	r.minSeq = m.MinSeq
	r.depth.Store(int32(m.Depth))
	r.headSeq.Store(int64(m.Seq))
	return r.state.list, r.state.seq, nil
}

// Run polls until ctx ends, sleeping a jittered PollInterval between
// cycles. Cycle errors are counted (poll_errors_total) and retried next
// cycle; only ctx cancellation stops the loop. On exit the client's
// idle keep-alive connections to the origin are closed, so a drained
// replica leaves no goroutines behind on either end of the wire.
func (r *Replica) Run(ctx context.Context) error {
	if t, ok := r.opts.Client.Transport.(interface{ CloseIdleConnections() }); ok {
		defer t.CloseIdleConnections()
	} else if r.opts.Client.Transport == nil {
		defer http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		_ = r.Poll(ctx)
		// ±20% jitter so a fleet of replicas doesn't thundering-herd.
		d := r.opts.PollInterval
		d = d - d/5 + time.Duration(r.rng.Int63n(int64(2*d/5+1)))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
}
