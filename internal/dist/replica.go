package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/psl"
)

// maxBlobBytes bounds any single response body the replica will read;
// the full 9.4k-rule list encodes to ~170KB, so 16MB is generous.
const maxBlobBytes = 16 << 20

// ReplicaOptions tunes a Replica. Zero values get defaults.
type ReplicaOptions struct {
	// Client performs the HTTP requests. Default: a client with a
	// 30-second timeout (never the zero-timeout http.DefaultClient — a
	// stalled origin must not hang the poll loop forever).
	Client *http.Client
	// PollInterval is the steady-state manifest poll cadence, jittered
	// ±20% per cycle. Default 1s.
	PollInterval time.Duration
	// BackoffBase and BackoffMax bound the jittered exponential backoff
	// between retries of a failed transfer. Defaults 100ms and 5s.
	BackoffBase, BackoffMax time.Duration
	// MaxHop caps how many versions one patch spans; catching up from
	// far behind takes several hops. Default 64.
	MaxHop int
	// MaxAttempts is how many consecutive failed hop attempts trigger
	// the full-blob fallback. Default 4.
	MaxAttempts int
	// Seed drives poll and backoff jitter. Default 1.
	Seed int64
}

func (o ReplicaOptions) withDefaults() ReplicaOptions {
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.PollInterval <= 0 {
		o.PollInterval = time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.MaxHop <= 0 {
		o.MaxHop = 64
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// replicaState is the replica's current verified snapshot.
type replicaState struct {
	list *psl.List
	seq  int
	fp   string
}

// Replica follows an origin: it polls the manifest (with ETag
// short-circuiting), pulls patch chains toward the advertised head,
// verifies the fingerprint at every hop, and falls back to a full-blob
// sync after repeated failures (broken chain, verification mismatch, or
// transport errors alike). Every list handed to OnSwap has had its
// fingerprint verified against the blob that produced it — a replica
// never swaps in a list the origin didn't cryptographically promise.
//
// Poll, Bootstrap, and Run must be used from one goroutine; Lag,
// CurrentSeq, and the counters are safe to read from any goroutine.
type Replica struct {
	origin string
	opts   ReplicaOptions

	// OnSwap, if set, is invoked after each verified snapshot install
	// (not for Bootstrap, whose result the caller installs). Set before
	// calling Run.
	OnSwap func(l *psl.List, seq int)

	state        replicaState
	curSeq       atomic.Int64
	headSeq      atomic.Int64
	manifestETag string
	headFP       string

	rng *rand.Rand

	polls, pollErrors obs.Counter
	applied           obs.Counter
	patchBytes        obs.Counter
	fullBytes         obs.Counter
	verifyFailures    obs.Counter
	fallbacks         obs.Counter
	retries           obs.Counter
	applyDur          *obs.Histogram
}

// NewReplica builds a replica for the origin at base URL (e.g.
// "http://127.0.0.1:8353"; the /dist/ prefix is appended internally).
// It starts empty: seed it with Bootstrap or SetState before Run.
func NewReplica(origin string, opts ReplicaOptions) *Replica {
	opts = opts.withDefaults()
	r := &Replica{
		origin:   origin,
		opts:     opts,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		applyDur: obs.NewHistogram(nil),
	}
	r.curSeq.Store(-1)
	r.headSeq.Store(-1)
	return r
}

// SetState installs a known snapshot (e.g. a locally embedded list) as
// the replica's starting point.
func (r *Replica) SetState(l *psl.List, seq int) {
	r.state = replicaState{list: l, seq: seq, fp: l.Fingerprint()}
	r.curSeq.Store(int64(seq))
}

// CurrentSeq reports the last installed version, or -1 before any.
func (r *Replica) CurrentSeq() int64 { return r.curSeq.Load() }

// Lag reports how many versions the replica trails the origin's last
// advertised head — the replication-lag gauge. Zero when caught up or
// when no manifest has been seen yet.
func (r *Replica) Lag() int64 {
	head, cur := r.headSeq.Load(), r.curSeq.Load()
	if head < 0 || cur >= head {
		return 0
	}
	return head - cur
}

// Counter accessors for tests and health reporting.

// Applied reports patches successfully applied and installed.
func (r *Replica) Applied() uint64 { return r.applied.Load() }

// Fallbacks reports full-blob syncs taken after patching failed.
func (r *Replica) Fallbacks() uint64 { return r.fallbacks.Load() }

// VerifyFailures reports blobs rejected by checksum, decode, or
// fingerprint verification.
func (r *Replica) VerifyFailures() uint64 { return r.verifyFailures.Load() }

// Retries reports failed transfer attempts that were retried.
func (r *Replica) Retries() uint64 { return r.retries.Load() }

// RegisterMetrics attaches the replica's metric families to a registry.
func (r *Replica) RegisterMetrics(reg *obs.Registry) {
	reg.MustRegister("psl_dist_replica_lag_seqs", "Versions the replica trails the origin head.",
		nil, obs.GaugeFunc(func() float64 { return float64(r.Lag()) }))
	reg.MustRegister("psl_dist_replica_polls_total", "Manifest polls attempted.", nil, &r.polls)
	reg.MustRegister("psl_dist_replica_poll_errors_total", "Polls that ended in a transport or protocol error.", nil, &r.pollErrors)
	reg.MustRegister("psl_dist_replica_patches_applied_total", "Patches verified and installed.", nil, &r.applied)
	reg.MustRegister("psl_dist_replica_bytes_total", "Blob bytes fetched, by transfer kind.",
		obs.Labels{{"kind", "patch"}}, &r.patchBytes)
	reg.MustRegister("psl_dist_replica_bytes_total", "Blob bytes fetched, by transfer kind.",
		obs.Labels{{"kind", "full"}}, &r.fullBytes)
	reg.MustRegister("psl_dist_replica_verify_failures_total", "Blobs rejected by checksum or fingerprint verification.", nil, &r.verifyFailures)
	reg.MustRegister("psl_dist_replica_fallback_syncs_total", "Full-blob syncs taken after patch chains failed.", nil, &r.fallbacks)
	reg.MustRegister("psl_dist_replica_retries_total", "Failed transfer attempts that were retried.", nil, &r.retries)
	reg.MustRegister("psl_dist_replica_apply_duration_seconds", "Time to decode, verify, and apply one blob.", nil, r.applyDur)
}

// get fetches one dist path, enforcing the body size cap. A non-2xx
// status, oversized body, or transport error (including mid-body
// truncation) is returned as an error.
func (r *Replica) get(ctx context.Context, path, etag string) (body []byte, gotETag string, status int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.origin+path, nil)
	if err != nil {
		return nil, "", 0, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return nil, "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		return nil, etag, resp.StatusCode, nil
	}
	if resp.StatusCode != http.StatusOK {
		// Drain a little so the connection can be reused, then fail.
		_, _ = io.CopyN(io.Discard, resp.Body, 4096)
		return nil, "", resp.StatusCode, fmt.Errorf("dist: GET %s: status %d", path, resp.StatusCode)
	}
	body, err = io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes+1))
	if err != nil {
		return nil, "", resp.StatusCode, fmt.Errorf("dist: GET %s: %w", path, err)
	}
	if len(body) > maxBlobBytes {
		return nil, "", resp.StatusCode, fmt.Errorf("dist: GET %s: body exceeds %d bytes", path, maxBlobBytes)
	}
	return body, resp.Header.Get("ETag"), resp.StatusCode, nil
}

// Poll performs one replication cycle: refresh the manifest, then chase
// the head if behind. Transfer errors inside the cycle are retried with
// jittered exponential backoff and, after MaxAttempts consecutive
// failures of a hop, a full-blob fallback; Poll only returns an error
// once the cycle cannot make progress (or ctx ends).
func (r *Replica) Poll(ctx context.Context) error {
	r.polls.Add(1)
	body, etag, status, err := r.get(ctx, ManifestPath, r.manifestETag)
	if err != nil {
		r.pollErrors.Add(1)
		return err
	}
	if status != http.StatusNotModified {
		var m Manifest
		if err := json.Unmarshal(body, &m); err != nil {
			r.pollErrors.Add(1)
			return fmt.Errorf("dist: manifest: %w", err)
		}
		if m.Seq < 0 || len(m.Fingerprint) != 64 {
			r.pollErrors.Add(1)
			return fmt.Errorf("dist: manifest advertises invalid head (seq %d)", m.Seq)
		}
		r.manifestETag = etag
		r.headFP = m.Fingerprint
		r.headSeq.Store(int64(m.Seq))
	}
	if err := r.syncToHead(ctx); err != nil {
		r.pollErrors.Add(1)
		return err
	}
	return nil
}

// syncToHead walks the replica from its current version to the
// advertised head, one bounded patch hop at a time.
func (r *Replica) syncToHead(ctx context.Context) error {
	for {
		head := int(r.headSeq.Load())
		if r.state.list != nil && r.state.seq >= head {
			return nil
		}
		attempts := 0
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			var err error
			if r.state.list == nil || attempts >= r.opts.MaxAttempts {
				if attempts >= r.opts.MaxAttempts {
					r.fallbacks.Add(1)
				}
				err = r.fullSync(ctx, head)
			} else {
				to := min(r.state.seq+r.opts.MaxHop, head)
				err = r.applyHop(ctx, r.state.seq, to)
			}
			if err == nil {
				break
			}
			attempts++
			r.retries.Add(1)
			if attempts > 2*r.opts.MaxAttempts {
				return fmt.Errorf("dist: giving up after %d attempts: %w", attempts, err)
			}
			if !r.sleepBackoff(ctx, attempts) {
				return ctx.Err()
			}
		}
	}
}

// applyHop fetches and applies the patch cur→to. The patch must decode
// (checksum, canonical rules), match the hop endpoints, and apply
// cleanly from the current fingerprint to its promised target, or the
// hop fails without touching the installed state.
func (r *Replica) applyHop(ctx context.Context, cur, to int) error {
	path := fmt.Sprintf("%s%d/%d", patchPrefix, cur, to)
	body, _, _, err := r.get(ctx, path, "")
	if err != nil {
		return err
	}
	start := time.Now()
	p, err := DecodePatch(body)
	if err != nil {
		r.verifyFailures.Add(1)
		return err
	}
	if p.FromSeq != cur || p.ToSeq != to {
		r.verifyFailures.Add(1)
		return fmt.Errorf("%w: patch covers %d→%d, requested %d→%d", ErrCorrupt, p.FromSeq, p.ToSeq, cur, to)
	}
	l, err := p.Apply(r.state.list, r.state.fp)
	if err != nil {
		r.verifyFailures.Add(1)
		return err
	}
	r.applyDur.Observe(time.Since(start))
	r.patchBytes.Add(uint64(len(body)))
	r.applied.Add(1)
	r.install(l, p.ToSeq, p.ToFP)
	return nil
}

// fullSync replaces the replica's state with the origin's full blob of
// version seq, the recovery path when patching cannot proceed.
func (r *Replica) fullSync(ctx context.Context, seq int) error {
	body, _, _, err := r.get(ctx, fmt.Sprintf("%s%d", fullPrefix, seq), "")
	if err != nil {
		return err
	}
	start := time.Now()
	f, err := DecodeFull(body)
	if err != nil {
		r.verifyFailures.Add(1)
		return err
	}
	if f.Seq != seq {
		r.verifyFailures.Add(1)
		return fmt.Errorf("%w: full blob is version %d, requested %d", ErrCorrupt, f.Seq, seq)
	}
	l, err := f.List()
	if err != nil {
		r.verifyFailures.Add(1)
		return err
	}
	r.applyDur.Observe(time.Since(start))
	r.fullBytes.Add(uint64(len(body)))
	r.install(l, f.Seq, f.FP)
	return nil
}

// install publishes a verified snapshot: callback first, then the
// atomics that feed Lag.
func (r *Replica) install(l *psl.List, seq int, fp string) {
	r.state = replicaState{list: l, seq: seq, fp: fp}
	if r.OnSwap != nil {
		r.OnSwap(l, seq)
	}
	r.curSeq.Store(int64(seq))
}

// Bootstrap fetches the manifest and performs an initial full-blob sync
// of fromSeq (or the advertised head when fromSeq < 0), returning the
// verified list without invoking OnSwap: the caller typically builds
// its serving state from the return value. One attempt; callers retry.
func (r *Replica) Bootstrap(ctx context.Context, fromSeq int) (*psl.List, int, error) {
	r.polls.Add(1)
	body, etag, _, err := r.get(ctx, ManifestPath, "")
	if err != nil {
		r.pollErrors.Add(1)
		return nil, 0, err
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		r.pollErrors.Add(1)
		return nil, 0, fmt.Errorf("dist: manifest: %w", err)
	}
	seq := fromSeq
	if seq < 0 || seq > m.Seq {
		seq = m.Seq
	}
	if seq < m.MinSeq {
		seq = m.MinSeq
	}
	onSwap := r.OnSwap
	r.OnSwap = nil
	err = r.fullSync(ctx, seq)
	r.OnSwap = onSwap
	if err != nil {
		r.pollErrors.Add(1)
		return nil, 0, err
	}
	r.manifestETag = etag
	r.headFP = m.Fingerprint
	r.headSeq.Store(int64(m.Seq))
	return r.state.list, r.state.seq, nil
}

// Run polls until ctx ends, sleeping a jittered PollInterval between
// cycles. Cycle errors are counted (poll_errors_total) and retried next
// cycle; only ctx cancellation stops the loop. On exit the client's
// idle keep-alive connections to the origin are closed, so a drained
// replica leaves no goroutines behind on either end of the wire.
func (r *Replica) Run(ctx context.Context) error {
	if t, ok := r.opts.Client.Transport.(interface{ CloseIdleConnections() }); ok {
		defer t.CloseIdleConnections()
	} else if r.opts.Client.Transport == nil {
		defer http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		_ = r.Poll(ctx)
		// ±20% jitter so a fleet of replicas doesn't thundering-herd.
		d := r.opts.PollInterval
		d = d - d/5 + time.Duration(r.rng.Int63n(int64(2*d/5+1)))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
}

// sleepBackoff waits the jittered exponential backoff for the given
// attempt number; false means ctx ended first.
func (r *Replica) sleepBackoff(ctx context.Context, attempt int) bool {
	d := r.opts.BackoffBase << (attempt - 1)
	if d > r.opts.BackoffMax || d <= 0 {
		d = r.opts.BackoffMax
	}
	// Full jitter in [d/2, d].
	d = d/2 + time.Duration(r.rng.Int63n(int64(d/2+1)))
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
