package dist

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/psl"
)

// fuzzBase is the fixed source list every fuzzed patch is applied to.
func fuzzBase() *psl.List {
	return psl.MustParse(`
// ===BEGIN ICANN DOMAINS===
com
net
org
co.uk
ac.uk
*.ck
!www.ck
jp
tokyo.jp
// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===
github.io
blogspot.com
s3.amazonaws.com
// ===END PRIVATE DOMAINS===
`)
}

// mutateList derives a deterministic variant of base from raw fuzz
// bytes: each byte drives one edit (remove an existing rule, add a
// synthetic one, or move a rule's section).
func mutateList(base *psl.List, data []byte) *psl.List {
	rules := append([]psl.Rule(nil), base.Rules()...)
	for i, b := range data {
		if len(data) > 64 {
			break
		}
		switch b % 3 {
		case 0: // remove
			if len(rules) > 1 {
				rules = append(rules[:int(b)%len(rules)], rules[int(b)%len(rules)+1:]...)
			}
		case 1: // add
			r, err := psl.ParseRule(fmt.Sprintf("fuzz%d-%d.example", i, b), psl.SectionPrivate)
			if err == nil {
				rules = append(rules, r)
			}
		case 2: // move section
			j := int(b) % len(rules)
			if rules[j].Section == psl.SectionICANN {
				rules[j].Section = psl.SectionPrivate
			} else {
				rules[j].Section = psl.SectionICANN
			}
		}
	}
	return psl.NewList(rules)
}

// FuzzPatchRoundTrip drives the codec's core safety contract from two
// directions. (1) Constructive: derive a mutated target list from the
// fuzz input, build the patch, and require a byte-exact round trip
// through encode→decode→apply. (2) Adversarial: treat the raw input as
// a wire blob; if it decodes at all, applying it must either error or
// hit the promised target fingerprint exactly — mirroring the
// PackedMatcher corrupt-blob discipline, a decoded patch never silently
// produces a divergent list.
func FuzzPatchRoundTrip(f *testing.F) {
	base := fuzzBase()
	// Seed with valid blobs (so mutation explores near-valid space) and
	// structured edit scripts.
	target := mutateList(base, []byte{0, 1, 2, 3, 4, 5})
	f.Add(BuildPatch(base, target, 0, 1).Encode())
	f.Add(BuildPatch(base, base.Clone(), 3, 9).Encode())
	f.Add(EncodeFull(base, 0))
	f.Add([]byte{0x50, 0x53, 0x4c, 0x44, 1})
	f.Add([]byte("not a blob at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Constructive direction.
		target := mutateList(base, data)
		p := BuildPatch(base, target, 1, 2)
		dec, err := DecodePatch(p.Encode())
		if err != nil {
			t.Fatalf("decode of freshly encoded patch failed: %v", err)
		}
		applied, err := dec.Apply(base, "")
		if err != nil {
			t.Fatalf("apply of valid patch failed: %v", err)
		}
		if applied.Serialize() != target.Serialize() {
			t.Fatalf("round trip diverged:\n%s\nvs\n%s", applied.Serialize(), target.Serialize())
		}
		if applied.Fingerprint() != dec.ToFP {
			t.Fatalf("applied fingerprint %s != promised %s", applied.Fingerprint(), dec.ToFP)
		}

		// Adversarial direction: the input as a hostile blob.
		hp, err := DecodePatch(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		// It decoded (checksum valid — in practice only real blobs).
		res, err := hp.Apply(base, "")
		if err != nil {
			if !errors.Is(err, ErrFingerprint) {
				t.Fatalf("apply error is neither success nor ErrFingerprint: %v", err)
			}
			return
		}
		if got := res.Fingerprint(); got != hp.ToFP {
			t.Fatalf("decoded patch applied to %s, promised %s — silent divergence", got, hp.ToFP)
		}
	})
}

// FuzzFullRoundTrip is the same contract for full snapshot blobs.
func FuzzFullRoundTrip(f *testing.F) {
	base := fuzzBase()
	f.Add(EncodeFull(base, 5))
	f.Add(BuildPatch(base, mutateList(base, []byte{9, 8, 7}), 0, 1).Encode())
	f.Add([]byte{0x50, 0x53, 0x4c, 0x46, 1, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		target := mutateList(base, data)
		target.Version = "vfuzz"
		blob := EncodeFull(target, 3)
		fl, err := DecodeFull(blob)
		if err != nil {
			t.Fatalf("decode of freshly encoded full failed: %v", err)
		}
		l, err := fl.List()
		if err != nil {
			t.Fatalf("materialise of valid full failed: %v", err)
		}
		if l.Serialize() != target.Serialize() {
			t.Fatalf("full round trip diverged")
		}

		hf, err := DecodeFull(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		l, err = hf.List()
		if err != nil {
			if !errors.Is(err, ErrFingerprint) {
				t.Fatalf("List error is neither success nor ErrFingerprint: %v", err)
			}
			return
		}
		if got := l.Fingerprint(); got != hf.FP {
			t.Fatalf("decoded full materialised %s, promised %s", got, hf.FP)
		}
	})
}

// FuzzMatcherBlob drives the compiled-matcher blob chain with a
// corrupt-blob seed corpus mirroring the psl.ErrBadBlob validation
// cases: tampered packed headers (magic, version, counts), truncation,
// bit flips in every region, and a valid matcher wrapped with the wrong
// fingerprint. The contract is absolute: UnpackMatcherBlob never
// panics, and anything it accepts IS the matcher for the promised
// fingerprint — behaviourally checked against a compiled oracle.
func FuzzMatcherBlob(f *testing.F) {
	base := fuzzBase()
	fp := base.Fingerprint()
	packed := psl.NewPackedMatcher(base).Marshal()
	valid := EncodeMatcherBlob(3, fp, packed)
	f.Add(valid)
	f.Add(valid[:len(valid)-7]) // truncated through the trailer
	f.Add(valid[:40])           // truncated mid-header

	// Corrupt packed regions re-wrapped in fresh (checksummed!)
	// envelopes, so the fuzzer starts past the checksum and exercises
	// the structural validator — the same cases the psl ErrBadBlob
	// tests pin.
	mutate := func(off int, val byte) []byte {
		p := append([]byte(nil), packed...)
		p[off] = val
		return EncodeMatcherBlob(3, fp, p)
	}
	f.Add(mutate(0, 'X'))                        // packed magic
	f.Add(mutate(4, 99))                         // packed version
	f.Add(mutate(8, 0xff))                       // rule count
	f.Add(mutate(12, 0x07))                      // capacity not a power of two
	f.Add(mutate(16, 0xff))                      // node count vs occupied slots
	f.Add(mutate(20, 0xff))                      // arena length vs blob size
	f.Add(mutate(len(packed)/2, 0xAA))           // table bits
	f.Add(mutate(len(packed)-1, 0x00))           // arena bytes
	f.Add(EncodeMatcherBlob(3, fp, packed[:50])) // truncated packed
	f.Add(EncodeMatcherBlob(3, fp, nil))         // empty packed
	f.Add(EncodeMatcherBlob(9, fp, packed))      // seq mismatch
	f.Add(EncodeFull(base, 3))                   // wrong envelope kind
	wrongRules := psl.MustParse("example\nfoo.example\n")
	f.Add(EncodeMatcherBlob(3, fp, psl.NewPackedMatcher(wrongRules).Marshal())) // valid matcher, wrong rules

	oracle := psl.NewPackedMatcher(base)
	hosts := []string{"a.b.com", "x.co.uk", "deep.ac.uk", "any.ck", "www.ck", "u.github.io", "unlisted.zone"}
	f.Fuzz(func(t *testing.T, data []byte) {
		pm, err := UnpackMatcherBlob(data, 3, fp)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFingerprint) && !errors.Is(err, psl.ErrBadBlob) {
				t.Fatalf("unpack error is untyped: %v", err)
			}
			return
		}
		// Accepted: it must BE the promised matcher, not merely claim to.
		if got := pm.RulesFingerprint(); got != fp {
			t.Fatalf("accepted blob digests to %s, promised %s", got, fp)
		}
		for _, h := range hosts {
			if got, want := pm.Match(h), oracle.Match(h); got != want {
				t.Fatalf("accepted blob diverges on %q: %+v vs %+v", h, got, want)
			}
		}
	})
}

// FuzzManifestRoundTrip is the manifest codec's contract, from both
// directions. (1) Constructive: derive a valid manifest from the fuzz
// bytes and require an exact encode→decode round trip. (2) Adversarial:
// treat the raw input as a wire manifest; DecodeManifest must either
// reject it with ErrCorrupt or hand back a manifest that re-validates —
// a replica never acts on a head advertisement with an out-of-range
// seq, a malformed fingerprint, or an incoherent retention window.
func FuzzManifestRoundTrip(f *testing.F) {
	base := fuzzBase()
	valid := Manifest{
		Seq:         41,
		Fingerprint: base.Fingerprint(),
		Version:     "v41",
		Date:        time.Date(2023, 10, 1, 0, 0, 0, 0, time.UTC),
		Rules:       base.Len(),
		MinSeq:      7,
		Depth:       2,
	}
	blob := EncodeManifest(valid)
	f.Add(blob)
	f.Add(blob[:len(blob)/2])   // truncated mid-object
	f.Add([]byte(`{}`))         // all fields missing
	f.Add([]byte(`{"seq":-1}`)) // negative head
	f.Add([]byte(`{"seq":1,"fingerprint":"short"}`))
	f.Add([]byte(`{"seq":1,"fingerprint":"` + strings.ToUpper(base.Fingerprint()) + `"}`)) // uppercase hex
	f.Add([]byte(`{"seq":3,"min_seq":9,"fingerprint":"` + base.Fingerprint() + `"}`))      // window above head
	f.Add([]byte(`{"seq":1,"depth":9999,"fingerprint":"` + base.Fingerprint() + `"}`))     // absurd depth
	f.Add([]byte("not json"))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Constructive: fuzz bytes drive the field values, clamped into
		// validity; the round trip must be exact.
		m := valid
		for i, b := range data {
			if i > 8 {
				break
			}
			switch i % 4 {
			case 0:
				m.Seq = int(b) * 7
			case 1:
				m.MinSeq = int(b) % (m.Seq + 1)
			case 2:
				m.Depth = int(b) % (maxDepth + 1)
			case 3:
				m.Rules = int(b) * 11
			}
		}
		if m.MinSeq > m.Seq {
			m.MinSeq = m.Seq
		}
		got, err := DecodeManifest(EncodeManifest(m))
		if err != nil {
			t.Fatalf("decode of freshly encoded manifest failed: %v", err)
		}
		if !got.Date.Equal(m.Date) {
			t.Fatalf("date diverged: %v vs %v", got.Date, m.Date)
		}
		got.Date, m.Date = time.Time{}, time.Time{} // Equal above; == below needs identical locations
		if got != m {
			t.Fatalf("round trip diverged:\n%+v\nvs\n%+v", got, m)
		}

		// Adversarial: the input as a hostile wire manifest.
		hm, err := DecodeManifest(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		if err := hm.Validate(); err != nil {
			t.Fatalf("DecodeManifest returned an invalid manifest: %v", err)
		}
	})
}
