package dist

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/psl"
)

// fuzzBase is the fixed source list every fuzzed patch is applied to.
func fuzzBase() *psl.List {
	return psl.MustParse(`
// ===BEGIN ICANN DOMAINS===
com
net
org
co.uk
ac.uk
*.ck
!www.ck
jp
tokyo.jp
// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===
github.io
blogspot.com
s3.amazonaws.com
// ===END PRIVATE DOMAINS===
`)
}

// mutateList derives a deterministic variant of base from raw fuzz
// bytes: each byte drives one edit (remove an existing rule, add a
// synthetic one, or move a rule's section).
func mutateList(base *psl.List, data []byte) *psl.List {
	rules := append([]psl.Rule(nil), base.Rules()...)
	for i, b := range data {
		if len(data) > 64 {
			break
		}
		switch b % 3 {
		case 0: // remove
			if len(rules) > 1 {
				rules = append(rules[:int(b)%len(rules)], rules[int(b)%len(rules)+1:]...)
			}
		case 1: // add
			r, err := psl.ParseRule(fmt.Sprintf("fuzz%d-%d.example", i, b), psl.SectionPrivate)
			if err == nil {
				rules = append(rules, r)
			}
		case 2: // move section
			j := int(b) % len(rules)
			if rules[j].Section == psl.SectionICANN {
				rules[j].Section = psl.SectionPrivate
			} else {
				rules[j].Section = psl.SectionICANN
			}
		}
	}
	return psl.NewList(rules)
}

// FuzzPatchRoundTrip drives the codec's core safety contract from two
// directions. (1) Constructive: derive a mutated target list from the
// fuzz input, build the patch, and require a byte-exact round trip
// through encode→decode→apply. (2) Adversarial: treat the raw input as
// a wire blob; if it decodes at all, applying it must either error or
// hit the promised target fingerprint exactly — mirroring the
// PackedMatcher corrupt-blob discipline, a decoded patch never silently
// produces a divergent list.
func FuzzPatchRoundTrip(f *testing.F) {
	base := fuzzBase()
	// Seed with valid blobs (so mutation explores near-valid space) and
	// structured edit scripts.
	target := mutateList(base, []byte{0, 1, 2, 3, 4, 5})
	f.Add(BuildPatch(base, target, 0, 1).Encode())
	f.Add(BuildPatch(base, base.Clone(), 3, 9).Encode())
	f.Add(EncodeFull(base, 0))
	f.Add([]byte{0x50, 0x53, 0x4c, 0x44, 1})
	f.Add([]byte("not a blob at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Constructive direction.
		target := mutateList(base, data)
		p := BuildPatch(base, target, 1, 2)
		dec, err := DecodePatch(p.Encode())
		if err != nil {
			t.Fatalf("decode of freshly encoded patch failed: %v", err)
		}
		applied, err := dec.Apply(base, "")
		if err != nil {
			t.Fatalf("apply of valid patch failed: %v", err)
		}
		if applied.Serialize() != target.Serialize() {
			t.Fatalf("round trip diverged:\n%s\nvs\n%s", applied.Serialize(), target.Serialize())
		}
		if applied.Fingerprint() != dec.ToFP {
			t.Fatalf("applied fingerprint %s != promised %s", applied.Fingerprint(), dec.ToFP)
		}

		// Adversarial direction: the input as a hostile blob.
		hp, err := DecodePatch(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		// It decoded (checksum valid — in practice only real blobs).
		res, err := hp.Apply(base, "")
		if err != nil {
			if !errors.Is(err, ErrFingerprint) {
				t.Fatalf("apply error is neither success nor ErrFingerprint: %v", err)
			}
			return
		}
		if got := res.Fingerprint(); got != hp.ToFP {
			t.Fatalf("decoded patch applied to %s, promised %s — silent divergence", got, hp.ToFP)
		}
	})
}

// FuzzFullRoundTrip is the same contract for full snapshot blobs.
func FuzzFullRoundTrip(f *testing.F) {
	base := fuzzBase()
	f.Add(EncodeFull(base, 5))
	f.Add(BuildPatch(base, mutateList(base, []byte{9, 8, 7}), 0, 1).Encode())
	f.Add([]byte{0x50, 0x53, 0x4c, 0x46, 1, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		target := mutateList(base, data)
		target.Version = "vfuzz"
		blob := EncodeFull(target, 3)
		fl, err := DecodeFull(blob)
		if err != nil {
			t.Fatalf("decode of freshly encoded full failed: %v", err)
		}
		l, err := fl.List()
		if err != nil {
			t.Fatalf("materialise of valid full failed: %v", err)
		}
		if l.Serialize() != target.Serialize() {
			t.Fatalf("full round trip diverged")
		}

		hf, err := DecodeFull(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		l, err = hf.List()
		if err != nil {
			if !errors.Is(err, ErrFingerprint) {
				t.Fatalf("List error is neither success nor ErrFingerprint: %v", err)
			}
			return
		}
		if got := l.Fingerprint(); got != hf.FP {
			t.Fatalf("decoded full materialised %s, promised %s", got, hf.FP)
		}
	})
}
