package dist

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// relayOver builds a relay following the given upstream URL, bootstraps
// it, and drives its replica through every head the walk function
// publishes, so the retained window is dense. It returns the relay and
// a test server re-serving /dist/ from it.
func relayOver(t *testing.T, upstream string, retain int) (*Relay, *Replica, *httptest.Server) {
	t.Helper()
	rep := NewReplica(upstream, fastOpts())
	rl := NewRelay(rep, RelayOptions{Retain: retain})
	ts := httptest.NewServer(rl)
	t.Cleanup(ts.Close)
	return rl, rep, ts
}

// stepTo walks the origin head to target one seq at a time, polling the
// relay's replica after each step so every intermediate version lands
// in the retained window.
func stepTo(t *testing.T, o *Origin, rep *Replica, target int) {
	t.Helper()
	ctx := context.Background()
	for seq := int(rep.CurrentSeq()) + 1; seq <= target; seq++ {
		o.SetHead(seq)
		if err := rep.Poll(ctx); err != nil {
			t.Fatalf("relay poll to %d: %v", seq, err)
		}
	}
}

// TestRelayServesDownstream wires origin → relay → edge over real HTTP
// and checks the edge converges through the relay alone, with the
// relay's manifest advertising depth 1 and the retained window bottom.
func TestRelayServesDownstream(t *testing.T) {
	h := testHist(t, 60)
	o := NewOrigin(h)
	o.SetHead(0)
	origin := httptest.NewServer(o)
	defer origin.Close()

	rl, rep, relaySrv := relayOver(t, origin.URL, 16)
	ctx := context.Background()
	if _, _, err := rep.Bootstrap(ctx, -1); err != nil {
		t.Fatalf("relay bootstrap: %v", err)
	}
	stepTo(t, o, rep, 20)

	m, ok := rl.Manifest()
	if !ok {
		t.Fatal("relay has no manifest after 21 installs")
	}
	if m.Seq != 20 || m.Depth != 1 {
		t.Fatalf("relay manifest seq %d depth %d, want 20 and 1", m.Seq, m.Depth)
	}
	if m.MinSeq != 5 {
		t.Fatalf("relay min_seq %d, want 5 (21 installs, retain 16)", m.MinSeq)
	}
	if m.Fingerprint != o.Chain().Fingerprint(20) {
		t.Fatal("relay head fingerprint diverges from the origin chain")
	}

	edge := NewReplica(relaySrv.URL, fastOpts())
	if _, _, err := edge.Bootstrap(ctx, -1); err != nil {
		t.Fatalf("edge bootstrap via relay: %v", err)
	}
	if edge.CurrentSeq() != 20 {
		t.Fatalf("edge bootstrapped to %d, want 20", edge.CurrentSeq())
	}
	if edge.UpstreamDepth() != 1 {
		t.Fatalf("edge sees upstream depth %d, want 1", edge.UpstreamDepth())
	}

	// Advance the origin; the edge must converge through the relay.
	stepTo(t, o, rep, 30)
	if err := edge.Poll(ctx); err != nil {
		t.Fatalf("edge poll: %v", err)
	}
	if edge.CurrentSeq() != 30 || edge.state.fp != o.Chain().Fingerprint(30) {
		t.Fatalf("edge at %d (fp match %v), want 30 verified against the origin chain",
			edge.CurrentSeq(), edge.state.fp == o.Chain().Fingerprint(30))
	}
	if got := edge.state.list.Serialize(); got != h.ListAt(30).Serialize() {
		t.Fatal("edge list differs from ListAt(30)")
	}
}

// TestRelayCompaction asks the relay for a patch spanning many retained
// versions: one blob comes back, wire-identical in format to an origin
// patch, and applies cleanly across the whole span.
func TestRelayCompaction(t *testing.T) {
	h := testHist(t, 40)
	o := NewOrigin(h)
	o.SetHead(0)
	origin := httptest.NewServer(o)
	defer origin.Close()

	rl, rep, relaySrv := relayOver(t, origin.URL, 32)
	if _, _, err := rep.Bootstrap(context.Background(), -1); err != nil {
		t.Fatalf("relay bootstrap: %v", err)
	}
	stepTo(t, o, rep, 12)

	status, body, _ := getBody(t, relaySrv.URL+patchPrefix+"2/11")
	if status != http.StatusOK {
		t.Fatalf("compacted patch status %d", status)
	}
	p, err := DecodePatch(body)
	if err != nil {
		t.Fatalf("decode compacted patch: %v", err)
	}
	if p.FromSeq != 2 || p.ToSeq != 11 {
		t.Fatalf("patch covers %d→%d, want 2→11", p.FromSeq, p.ToSeq)
	}
	if p.ToFP != o.Chain().Fingerprint(11) {
		t.Fatal("compacted patch target fingerprint diverges from the origin chain")
	}
	l, err := p.Apply(h.ListAt(2), o.Chain().Fingerprint(2))
	if err != nil {
		t.Fatalf("apply compacted patch: %v", err)
	}
	if l.Serialize() != h.ListAt(11).Serialize() {
		t.Fatal("compacted patch result differs from ListAt(11)")
	}
	if rl.Compactions() != 1 {
		t.Fatalf("Compactions = %d, want 1", rl.Compactions())
	}

	// A single-step patch is not a compaction.
	if status, _, _ := getBody(t, relaySrv.URL+patchPrefix+"10/11"); status != http.StatusOK {
		t.Fatalf("single-step patch status %d", status)
	}
	if rl.Compactions() != 1 {
		t.Fatalf("Compactions after single-step patch = %d, want still 1", rl.Compactions())
	}
}

// TestRelayWindowEviction: the window holds at most Retain snapshots;
// requests below the floor are misses, and the manifest's min_seq
// tracks the floor.
func TestRelayWindowEviction(t *testing.T) {
	h := testHist(t, 30)
	o := NewOrigin(h)
	o.SetHead(0)
	origin := httptest.NewServer(o)
	defer origin.Close()

	rl, rep, relaySrv := relayOver(t, origin.URL, 4)
	if _, _, err := rep.Bootstrap(context.Background(), -1); err != nil {
		t.Fatalf("relay bootstrap: %v", err)
	}
	stepTo(t, o, rep, 9)

	if got := rl.Retained(); got != 4 {
		t.Fatalf("Retained = %d, want 4", got)
	}
	m, _ := rl.Manifest()
	if m.MinSeq != 6 || m.Seq != 9 {
		t.Fatalf("window [%d, %d], want [6, 9]", m.MinSeq, m.Seq)
	}
	if status, _, _ := getBody(t, relaySrv.URL+fullPrefix+"3"); status != http.StatusNotFound {
		t.Fatalf("evicted full served with status %d, want 404", status)
	}
	if status, _, _ := getBody(t, relaySrv.URL+patchPrefix+"3/9"); status != http.StatusNotFound {
		t.Fatalf("patch from evicted seq served with status %d, want 404", status)
	}
	if rl.Misses() != 2 {
		t.Fatalf("Misses = %d, want 2", rl.Misses())
	}
	// Within the window both still serve.
	if status, _, _ := getBody(t, relaySrv.URL+fullPrefix+"7"); status != http.StatusOK {
		t.Fatalf("retained full status %d", status)
	}
	if status, _, _ := getBody(t, relaySrv.URL+patchPrefix+"6/9"); status != http.StatusOK {
		t.Fatalf("retained patch status %d", status)
	}
}

// TestRelayUnavailableBeforeFirstInstall: a relay that has verified
// nothing yet answers 503, and an edge's Bootstrap against it fails
// rather than installing garbage.
func TestRelayUnavailableBeforeFirstInstall(t *testing.T) {
	rep := NewReplica("http://unused.invalid", fastOpts())
	rl := NewRelay(rep, RelayOptions{})
	ts := httptest.NewServer(rl)
	defer ts.Close()

	status, body, _ := getBody(t, ts.URL+ManifestPath)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("empty relay manifest status %d, want 503", status)
	}
	if !strings.Contains(string(body), "no verified snapshot") {
		t.Fatalf("unexpected 503 body %q", body)
	}
	edge := NewReplica(ts.URL, fastOpts())
	if _, _, err := edge.Bootstrap(context.Background(), -1); err == nil {
		t.Fatal("edge Bootstrap against an empty relay succeeded")
	}
	if rl.Retained() != 0 {
		t.Fatalf("Retained = %d, want 0", rl.Retained())
	}
}

// TestRelaySeedRestoresServing: Seed (the restore path) makes a relay
// servable without an upstream sync, fingerprint computed locally.
func TestRelaySeedRestoresServing(t *testing.T) {
	h := testHist(t, 10)
	rep := NewReplica("http://unused.invalid", fastOpts())
	rl := NewRelay(rep, RelayOptions{})
	rl.Seed(h.ListAt(4), 4)

	m, ok := rl.Manifest()
	if !ok {
		t.Fatal("seeded relay has no manifest")
	}
	if m.Seq != 4 || m.MinSeq != 4 || m.Rules != h.ListAt(4).Len() {
		t.Fatalf("seeded manifest seq %d min %d rules %d", m.Seq, m.MinSeq, m.Rules)
	}
	if m.Fingerprint != h.ListAt(4).Fingerprint() {
		t.Fatal("seeded fingerprint mismatch")
	}
}

// TestReplicaExactMaxHopGap is the regression for the off-by-one at
// exactly MaxHop patches behind: gaps of MaxHop-1, MaxHop, and MaxHop+1
// must all be served by bounded patches alone — no compaction probe, no
// full-blob fallback.
func TestReplicaExactMaxHopGap(t *testing.T) {
	h := testHist(t, 60)
	for _, gap := range []int{15, 16, 17} { // MaxHop is 16 in fastOpts
		o := NewOrigin(h)
		o.SetHead(0)
		ts := httptest.NewServer(o)
		rep := NewReplica(ts.URL, fastOpts())
		ctx := context.Background()
		if _, _, err := rep.Bootstrap(ctx, 0); err != nil {
			t.Fatalf("gap %d: Bootstrap: %v", gap, err)
		}
		baseFulls := rep.FullSyncs()
		o.SetHead(gap)
		if err := rep.Poll(ctx); err != nil {
			t.Fatalf("gap %d: Poll: %v", gap, err)
		}
		if rep.CurrentSeq() != int64(gap) {
			t.Errorf("gap %d: converged to %d", gap, rep.CurrentSeq())
		}
		if rep.FullSyncs() != baseFulls || rep.Fallbacks() != 0 {
			t.Errorf("gap %d: full syncs %d→%d, fallbacks %d; want patches only",
				gap, baseFulls, rep.FullSyncs(), rep.Fallbacks())
		}
		if rep.CompactProbes() != 0 {
			t.Errorf("gap %d: %d compaction probes on a healthy wire, want 0", gap, rep.CompactProbes())
		}
		wantHops := uint64(1)
		if gap > 16 {
			wantHops = 2
		}
		if rep.Applied() != wantHops {
			t.Errorf("gap %d: Applied = %d, want %d", gap, rep.Applied(), wantHops)
		}
		ts.Close()
	}
}

// TestReplicaCompactionProbe: an upstream relay with a sparse window —
// only the edge's current seq and the head retained — cannot serve the
// bounded hop, but one compacted patch covers the whole gap. The edge
// must probe for it instead of silently paying for a full sync.
func TestReplicaCompactionProbe(t *testing.T) {
	h := testHist(t, 60)
	up := NewReplica("http://unused.invalid", fastOpts())
	rl := NewRelay(up, RelayOptions{Retain: 64})
	rl.Seed(h.ListAt(5), 5)
	rl.Seed(h.ListAt(45), 45)
	ts := httptest.NewServer(rl)
	defer ts.Close()

	edge := NewReplica(ts.URL, fastOpts())
	edge.SetState(h.ListAt(5), 5)
	if err := edge.Poll(context.Background()); err != nil {
		t.Fatalf("Poll: %v", err)
	}
	if edge.CurrentSeq() != 45 {
		t.Fatalf("edge at %d, want 45", edge.CurrentSeq())
	}
	if edge.CompactProbes() != 1 || edge.CompactHits() != 1 {
		t.Fatalf("probes %d hits %d, want 1/1", edge.CompactProbes(), edge.CompactHits())
	}
	if edge.FullSyncs() != 0 || edge.Fallbacks() != 0 {
		t.Fatalf("full syncs %d fallbacks %d, want 0/0 — the probe exists to avoid these",
			edge.FullSyncs(), edge.Fallbacks())
	}
	if rl.Compactions() != 1 {
		t.Fatalf("relay compactions %d, want 1", rl.Compactions())
	}
	if edge.state.fp != h.ListAt(45).Fingerprint() {
		t.Fatal("probe result fingerprint mismatch")
	}
}

// TestRelayMetricsExposition: the relay's families render through a
// registry and pass the promlint-style validator.
func TestRelayMetricsExposition(t *testing.T) {
	h := testHist(t, 10)
	up := NewReplica("http://unused.invalid", fastOpts())
	rl := NewRelay(up, RelayOptions{})
	rl.Seed(h.ListAt(3), 3)
	ts := httptest.NewServer(rl)
	defer ts.Close()
	getBody(t, ts.URL+ManifestPath)
	getBody(t, ts.URL+fullPrefix+"3")

	reg := obs.NewRegistry()
	rl.RegisterMetrics(reg)
	up.RegisterMetrics(reg)
	text := reg.Render()
	for _, want := range []string{
		`psl_dist_relay_requests_total{endpoint="manifest"} 1`,
		`psl_dist_relay_requests_total{endpoint="full"} 1`,
		`psl_dist_relay_retained_snapshots 1`,
		`psl_dist_relay_head_seq 3`,
		"psl_dist_replica_compact_probes_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if _, err := obs.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

// edgeConvergesThroughDeepChain pins arbitrary-depth fan-out: origin →
// relay → relay → edge, with the second relay following the first and
// the edge seeing depth 2.
func TestRelayChainDepthTwo(t *testing.T) {
	h := testHist(t, 30)
	o := NewOrigin(h)
	o.SetHead(0)
	origin := httptest.NewServer(o)
	defer origin.Close()

	_, rep1, srv1 := relayOver(t, origin.URL, 32)
	_, rep2, srv2 := relayOver(t, srv1.URL, 32)
	ctx := context.Background()
	if _, _, err := rep1.Bootstrap(ctx, -1); err != nil {
		t.Fatalf("tier-1 bootstrap: %v", err)
	}
	if _, _, err := rep2.Bootstrap(ctx, -1); err != nil {
		t.Fatalf("tier-2 bootstrap: %v", err)
	}
	for seq := 1; seq <= 8; seq++ {
		o.SetHead(seq)
		if err := rep1.Poll(ctx); err != nil {
			t.Fatalf("tier-1 poll: %v", err)
		}
		if err := rep2.Poll(ctx); err != nil {
			t.Fatalf("tier-2 poll: %v", err)
		}
	}

	edge := NewReplica(srv2.URL, fastOpts())
	if _, _, err := edge.Bootstrap(ctx, -1); err != nil {
		t.Fatalf("edge bootstrap: %v", err)
	}
	if edge.CurrentSeq() != 8 {
		t.Fatalf("edge at %d, want 8", edge.CurrentSeq())
	}
	if edge.UpstreamDepth() != 2 {
		t.Fatalf("edge upstream depth %d, want 2", edge.UpstreamDepth())
	}
	if edge.state.fp != o.Chain().Fingerprint(8) {
		t.Fatal("deep-chain fingerprint diverges from the origin chain")
	}
}
