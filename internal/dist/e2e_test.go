package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/fetch"
	"repro/internal/history"
	"repro/internal/psl"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
)

// oracle lazily materialises library lists per version and checks that
// an answer agrees with psl.List for the seq the answer names. Lists
// are cached because ListAt replays the event history per call.
type oracle struct {
	mu    sync.Mutex
	h     *history.History
	lists map[int]*psl.List
}

func newOracle(h *history.History) *oracle {
	return &oracle{h: h, lists: make(map[int]*psl.List)}
}

func (o *oracle) listAt(seq int) (*psl.List, error) {
	if seq < 0 || seq >= o.h.Len() {
		return nil, fmt.Errorf("answer names unknown seq %d", seq)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	l, ok := o.lists[seq]
	if !ok {
		l = o.h.ListAt(seq)
		o.lists[seq] = l
	}
	return l, nil
}

func (o *oracle) verify(a serve.Answer) error {
	l, err := o.listAt(a.Seq)
	if err != nil {
		return err
	}
	suffix, icann, err := l.PublicSuffix(a.Query)
	if err != nil {
		return fmt.Errorf("oracle rejects %q: %v", a.Query, err)
	}
	if a.ETLD != suffix || a.ICANN != icann {
		return fmt.Errorf("host %q seq %d: got etld=%q icann=%v, oracle %q %v",
			a.Query, a.Seq, a.ETLD, a.ICANN, suffix, icann)
	}
	site, err := l.Site(a.Query)
	switch {
	case errors.Is(err, psl.ErrIsSuffix):
		if !a.IsSuffix || a.Site != "" {
			return fmt.Errorf("host %q seq %d: got site=%q, oracle says bare suffix", a.Query, a.Seq, a.Site)
		}
	case err != nil:
		return fmt.Errorf("oracle Site(%q): %v", a.Query, err)
	case a.Site != site || a.IsSuffix:
		return fmt.Errorf("host %q seq %d: got site=%q is_suffix=%v, oracle %q",
			a.Query, a.Seq, a.Site, a.IsSuffix, site)
	}
	return nil
}

// advanceAndAwait returns a loadgen swapper that moves the origin head
// forward by step per call and blocks until the replica has caught up,
// so traffic runs against every intermediate state of the follower.
func advanceAndAwait(o *Origin, rep *Replica, step int, perStep time.Duration) func(int) error {
	head := 0
	return func(int) error {
		head += step
		if max := o.Chain().Len() - 1; head > max {
			head = max
		}
		o.SetHead(head)
		deadline := time.Now().Add(perStep)
		for rep.CurrentSeq() < int64(head) {
			if time.Now().After(deadline) {
				return fmt.Errorf("replica stuck at %d, head %d", rep.CurrentSeq(), head)
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}
}

// TestE2EReplicationFullHistory is the subsystem's acceptance harness:
// an origin walks its head across the full default history (1,142
// versions) while a replica follows over real HTTP and hot-swaps every
// verified hop into a serve.Service under concurrent lookup traffic.
// Every answer is checked against the library oracle for the seq it
// names — zero wrong answers, and the follower ends at lag 0.
func TestE2EReplicationFullHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	h := testHist(t, 1142)
	origin := NewOrigin(h)
	origin.SetHead(0)
	ts := httptest.NewServer(origin)
	defer ts.Close()

	opts := fastOpts()
	opts.MaxHop = 8 // force long hop chains so the sweep replays the history densely
	rep := NewReplica(ts.URL, opts)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	l, seq, err := rep.Bootstrap(ctx, 0)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if seq != 0 {
		t.Fatalf("bootstrap landed on %d, want 0", seq)
	}
	svc := serve.New(l, seq, serve.Options{})
	rep.OnSwap = func(l *psl.List, seq int) { svc.Swap(l, seq) }
	runDone := make(chan struct{})
	go func() { defer close(runDone); rep.Run(ctx) }()

	// Client count is deliberately low: the harness runs on few cores,
	// and busy-looping clients starve the replica's poll goroutine.
	orc := newOracle(h)
	head := h.Len() - 1
	const swaps = 30
	step := (head + swaps - 1) / swaps
	res := loadgen.Run(loadgen.Config{
		Clients:           2,
		RequestsPerClient: 300,
		Seed:              3,
		Hosts:             loadgen.Hostnames(h.ListAt(head), 1500, 11),
		Lookup:            svc.Lookup,
		Verify:            orc.verify,
		Swap:              advanceAndAwait(origin, rep, step, 30*time.Second),
		Swaps:             swaps,
		SwapInterval:      time.Millisecond,
	})
	if res.Swaps != swaps {
		t.Fatalf("only %d/%d head advances completed", res.Swaps, swaps)
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d wrong answers out of %d lookups; first: %v",
			res.Mismatches, res.Lookups, res.FirstMismatch)
	}
	if rep.CurrentSeq() != int64(head) || rep.Lag() != 0 {
		t.Fatalf("replica at %d lag %d, want %d/0", rep.CurrentSeq(), rep.Lag(), head)
	}
	if cur := svc.Current(); cur.Seq != head {
		t.Fatalf("service serves seq %d, want %d", cur.Seq, head)
	}
	if min := int64(head) / int64(opts.MaxHop); rep.Applied() < uint64(min) {
		t.Errorf("Applied = %d, want >= %d for %d seqs at MaxHop %d",
			rep.Applied(), min, head, opts.MaxHop)
	}
	cancel()
	<-runDone
	t.Logf("e2e: %d lookups (%d cached), %d patch hops, %d full syncs, %d retries in %v",
		res.Lookups, res.Cached, rep.Applied(), rep.Fallbacks(), rep.Retries(), res.Elapsed)
}

// TestE2EReplicationWithFailureInjection repeats the sweep with 35% of
// all dist responses failing (5xx, truncated bodies, corrupted bytes).
// The replica must still converge — via retries and full-sync fallback
// — and every list it swaps in must carry the exact fingerprint the
// origin's chain records for that seq: corruption is loud, never wrong.
func TestE2EReplicationWithFailureInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	h := testHist(t, 1142)
	origin := NewOrigin(h)
	origin.SetHead(0)
	inj := fetch.NewInjector(17, fetch.Fail5xx, fetch.FailTruncate, fetch.FailCorrupt)
	ts := httptest.NewServer(inj.Wrap(origin))
	defer ts.Close()

	opts := fastOpts()
	opts.BackoffMax = 10 * time.Millisecond
	opts.MaxHop = 64
	// At 35% injection, runs of 5 transport failures will trip the
	// breaker now and then; keep its open window short so the sweep
	// spends its time replicating, not fast-failing.
	opts.BreakerOpenFor = 10 * time.Millisecond
	rep := NewReplica(ts.URL, opts)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Bootstrap on a clean wire, then poison it for the whole follow.
	l, seq, err := rep.Bootstrap(ctx, 0)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	svc := serve.New(l, seq, serve.Options{})

	var swapMu sync.Mutex
	var badSwaps []string
	rep.OnSwap = func(l *psl.List, seq int) {
		if got, want := l.Fingerprint(), origin.Chain().Fingerprint(seq); got != want {
			swapMu.Lock()
			badSwaps = append(badSwaps, fmt.Sprintf("seq %d: %s != chain %s", seq, got, want))
			swapMu.Unlock()
		}
		svc.Swap(l, seq)
	}
	runDone := make(chan struct{})
	go func() { defer close(runDone); rep.Run(ctx) }()

	inj.SetFailureRate(0.35)
	orc := newOracle(h)
	head := h.Len() - 1
	const swaps = 12
	step := (head + swaps - 1) / swaps
	res := loadgen.Run(loadgen.Config{
		Clients:           2,
		RequestsPerClient: 150,
		Seed:              5,
		Hosts:             loadgen.Hostnames(h.ListAt(head), 1000, 13),
		Lookup:            svc.Lookup,
		Verify:            orc.verify,
		Swap:              advanceAndAwait(origin, rep, step, 60*time.Second),
		Swaps:             swaps,
		SwapInterval:      time.Millisecond,
	})
	if res.Swaps != swaps {
		t.Fatalf("only %d/%d head advances completed under injection", res.Swaps, swaps)
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d wrong answers; first: %v", res.Mismatches, res.FirstMismatch)
	}
	swapMu.Lock()
	defer swapMu.Unlock()
	if len(badSwaps) != 0 {
		t.Fatalf("replica swapped in %d unverified lists: %v", len(badSwaps), badSwaps[0])
	}
	if rep.CurrentSeq() != int64(head) || rep.Lag() != 0 {
		t.Fatalf("replica at %d lag %d, want %d/0", rep.CurrentSeq(), rep.Lag(), head)
	}
	if inj.Injected() == 0 {
		t.Fatalf("injector never fired; the test proved nothing")
	}
	if rep.VerifyFailures() == 0 && rep.Retries() == 0 && rep.pollErrors.Load() == 0 {
		t.Errorf("no verify failures, retries or poll errors despite %d injected faults", inj.Injected())
	}
	cancel()
	<-runDone
	t.Logf("injection e2e: %d faults injected, %d verify failures, %d retries, %d fallbacks, %d hops",
		inj.Injected(), rep.VerifyFailures(), rep.Retries(), rep.Fallbacks(), rep.Applied())
}
