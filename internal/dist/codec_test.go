package dist

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/psl"
)

const baseListText = `
// ===BEGIN ICANN DOMAINS===
com
net
co.uk
*.ck
!www.ck
// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===
github.io
blogspot.com
// ===END PRIVATE DOMAINS===
`

const targetListText = `
// ===BEGIN ICANN DOMAINS===
com
net
github.io
*.ck
!www.ck
fastly.net
// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===
blogspot.com
// ===END PRIVATE DOMAINS===
`

func testLists(t *testing.T) (old, new *psl.List) {
	t.Helper()
	old = psl.MustParse(baseListText)
	new = psl.MustParse(targetListText)
	new.Date = time.Date(2022, 10, 20, 12, 0, 0, 0, time.UTC)
	new.Version = "v0042-deadbeef"
	return old, new
}

func TestPatchRoundTrip(t *testing.T) {
	old, target := testLists(t)
	p := BuildPatch(old, target, 41, 42)
	// co.uk removed, fastly.net added, github.io moved to ICANN.
	if len(p.Removed) != 1 || p.Removed[0].Suffix != "co.uk" {
		t.Fatalf("Removed = %v", p.Removed)
	}
	if len(p.Added) != 1 || p.Added[0].Suffix != "fastly.net" {
		t.Fatalf("Added = %v", p.Added)
	}
	if len(p.Moved) != 1 || p.Moved[0].Suffix != "github.io" || p.Moved[0].Section != psl.SectionICANN {
		t.Fatalf("Moved = %v", p.Moved)
	}

	blob := p.Encode()
	got, err := DecodePatch(blob)
	if err != nil {
		t.Fatalf("DecodePatch: %v", err)
	}
	if got.FromSeq != 41 || got.ToSeq != 42 || got.FromFP != p.FromFP || got.ToFP != p.ToFP {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.ToVersion != "v0042-deadbeef" || !got.ToDate.Equal(target.Date) {
		t.Fatalf("metadata mismatch: version %q date %v", got.ToVersion, got.ToDate)
	}

	applied, err := got.Apply(old, "")
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !applied.Equal(target) {
		t.Fatalf("applied list differs from target")
	}
	if applied.Serialize() != target.Serialize() {
		t.Fatalf("applied serialization differs (sections or metadata lost):\n%s\nvs\n%s",
			applied.Serialize(), target.Serialize())
	}
	if applied.Fingerprint() != p.ToFP {
		t.Fatalf("applied fingerprint %s != promised %s", applied.Fingerprint(), p.ToFP)
	}
}

func TestPatchApplyWrongBase(t *testing.T) {
	old, target := testLists(t)
	p := BuildPatch(old, target, 1, 2)
	wrong := old.WithRules(psl.Rule{Suffix: "example", Section: psl.SectionICANN})
	if _, err := p.Apply(wrong, ""); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("Apply(wrong base) err = %v, want ErrFingerprint", err)
	}
	// The cached-fingerprint path must verify too.
	if _, err := p.Apply(wrong, wrong.Fingerprint()); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("Apply(wrong base, cached fp) err = %v, want ErrFingerprint", err)
	}
}

func TestPatchApplyHarmlessExtras(t *testing.T) {
	old, target := testLists(t)
	p := BuildPatch(old, target, 1, 2)
	// Removing an absent key and adding an already-present key are
	// no-ops under the dedup semantics; the patch must still verify.
	p.Removed = append(p.Removed, psl.Rule{Suffix: "never.existed", Section: psl.SectionICANN})
	p.Added = append(p.Added, psl.Rule{Suffix: "com", Section: psl.SectionICANN})
	applied, err := p.Apply(old, "")
	if err != nil {
		t.Fatalf("Apply with harmless extras: %v", err)
	}
	if !applied.Equal(target) {
		t.Fatalf("applied list differs from target")
	}
}

func TestPatchDecodeRejectsDamage(t *testing.T) {
	old, target := testLists(t)
	blob := BuildPatch(old, target, 1, 2).Encode()

	if _, err := DecodePatch(blob[:10]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated decode err = %v, want ErrCorrupt", err)
	}
	if _, err := DecodePatch(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty decode err = %v, want ErrCorrupt", err)
	}
	// Flipping any single byte must be caught (checksum or framing).
	for _, i := range []int{0, 4, 5, 20, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0xff
		if _, err := DecodePatch(bad); err == nil {
			t.Errorf("decode with byte %d flipped succeeded", i)
		}
	}
	// Trailing junk changes the checksummed region, so it fails too.
	if _, err := DecodePatch(append(append([]byte(nil), blob...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing-junk decode err = %v, want ErrCorrupt", err)
	}
	// A full blob is not a patch.
	if _, err := DecodePatch(EncodeFull(old, 1)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("full-as-patch decode err = %v, want ErrCorrupt", err)
	}
}

func TestFullRoundTrip(t *testing.T) {
	_, target := testLists(t)
	blob := EncodeFull(target, 42)
	f, err := DecodeFull(blob)
	if err != nil {
		t.Fatalf("DecodeFull: %v", err)
	}
	if f.Seq != 42 || f.Version != target.Version || !f.Date.Equal(target.Date) {
		t.Fatalf("header mismatch: %+v", f)
	}
	l, err := f.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if l.Serialize() != target.Serialize() {
		t.Fatalf("materialised list differs from source")
	}

	for _, i := range []int{0, 4, 5, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0xff
		if _, err := DecodeFull(bad); err == nil {
			t.Errorf("decode with byte %d flipped succeeded", i)
		}
	}
}

func TestFullListDetectsDuplicateCollapse(t *testing.T) {
	_, target := testLists(t)
	blob := EncodeFull(target, 7)
	f, err := DecodeFull(blob)
	if err != nil {
		t.Fatalf("DecodeFull: %v", err)
	}
	// Tamper post-decode: duplicating a rule collapses in NewList, so
	// the materialised fingerprint no longer matches the header.
	f.Rules = append(f.Rules, f.Rules[0])
	f.Rules = append(f.Rules[:1], f.Rules[2:]...)
	if _, err := f.List(); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("List on tampered rules err = %v, want ErrFingerprint", err)
	}
}

func TestDecodeRejectsNonCanonicalRules(t *testing.T) {
	// Hand-build a patch whose rule has the exception+wildcard kind
	// bits both set — representable in the wire format, but not
	// producible by the parser; decode must reject it even though the
	// checksum is valid.
	old, target := testLists(t)
	p := BuildPatch(old, target, 1, 2)
	p.Added = []psl.Rule{{Suffix: "bad.example", Wildcard: true, Exception: true, Section: psl.SectionICANN}}
	blob := p.Encode()
	if _, err := DecodePatch(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decode of !*. rule err = %v, want ErrCorrupt", err)
	}
	// Same for an upper-case (non-normalized) suffix.
	p.Added = []psl.Rule{{Suffix: "UPPER.example", Section: psl.SectionICANN}}
	if _, err := DecodePatch(p.Encode()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decode of non-normalized rule err = %v, want ErrCorrupt", err)
	}
}

func TestChainFingerprintsMatchListAt(t *testing.T) {
	h := history.Generate(history.Config{Versions: 60})
	c := NewChain(h)
	if c.Len() != 60 {
		t.Fatalf("chain covers %d versions, want 60", c.Len())
	}
	for _, seq := range []int{0, 1, 17, 30, 59} {
		want := h.ListAt(seq).Fingerprint()
		if got := c.Fingerprint(seq); got != want {
			t.Fatalf("chain fingerprint for v%d = %s, want %s", seq, got, want)
		}
	}
}

func TestChainPatchAppliesAcrossGaps(t *testing.T) {
	h := history.Generate(history.Config{Versions: 60})
	c := NewChain(h)
	for _, hop := range [][2]int{{0, 1}, {0, 59}, {10, 30}, {58, 59}} {
		from, to := hop[0], hop[1]
		p := c.Patch(from, to)
		blob := p.Encode()
		dec, err := DecodePatch(blob)
		if err != nil {
			t.Fatalf("patch %d→%d decode: %v", from, to, err)
		}
		applied, err := dec.Apply(h.ListAt(from), "")
		if err != nil {
			t.Fatalf("patch %d→%d apply: %v", from, to, err)
		}
		want := h.ListAt(to)
		if applied.Serialize() != want.Serialize() {
			t.Fatalf("patch %d→%d result differs from ListAt", from, to)
		}
		if applied.Version != want.Version || !applied.Date.Equal(want.Date) {
			t.Fatalf("patch %d→%d metadata: %q/%v want %q/%v",
				from, to, applied.Version, applied.Date, want.Version, want.Date)
		}
	}
}

func TestFullBlobSizeFormula(t *testing.T) {
	h := history.Generate(history.Config{Versions: 40})
	c := NewChain(h)
	_ = c
	for _, seq := range []int{0, 20, 39} {
		l := h.ListAt(seq)
		rulesEnc := 0
		for _, r := range l.Rules() {
			rulesEnc += encodedRuleSize(r)
		}
		want := len(EncodeFull(l, seq))
		if got := fullBlobSize(h.Meta(seq), l.Len(), rulesEnc); got != want {
			t.Fatalf("fullBlobSize(v%d) = %d, want %d", seq, got, want)
		}
	}
}

func TestComputeChainStats(t *testing.T) {
	h := history.Generate(history.Config{Versions: 40})
	s := ComputeChainStats(h)
	if s.Versions != 40 {
		t.Fatalf("Versions = %d", s.Versions)
	}
	if s.PatchBytesTotal <= 0 || s.FullBytesTotal <= 0 || s.BootstrapBytes <= 0 {
		t.Fatalf("degenerate stats: %+v", s)
	}
	if s.Ratio() <= 1 {
		t.Fatalf("full/patch ratio %.2f, expected deltas to win decisively", s.Ratio())
	}
	// Head full-blob size from the formula must match a real encode.
	if got := int64(len(EncodeFull(h.Latest(), h.Len()-1))); got != s.HeadFullBytes {
		t.Fatalf("HeadFullBytes = %d, real encode %d", s.HeadFullBytes, got)
	}
}

func TestPatchSeqRangeRejected(t *testing.T) {
	old, target := testLists(t)
	p := BuildPatch(old, target, 5, 5)
	if _, err := DecodePatch(p.Encode()); err == nil || !strings.Contains(err.Error(), "from == to") {
		t.Fatalf("self-patch decode err = %v, want from==to rejection", err)
	}
}
