# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race chaos fleet fleet-heavy torture bench bench-json bench-sanity bench-scaling metrics-lint

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/psl/ ./internal/serve/ ./internal/obs/ ./internal/experiments/ ./internal/dist/ ./internal/resilience/ ./internal/chaos/ ./internal/fleet/

# The full chaos replay: origin -> faulting proxy -> replica, six fault
# classes, crash-restart, goroutine-leak assertion. Runs under -race.
chaos:
	go test -race -count=1 -v -run 'TestChaosE2EReplication' ./internal/chaos/

# The CI fleet smoke: a seeded 200-edge, 2-tier run vs its single-tier
# baseline under -race; fails unless both converge with zero unverified
# swaps and the relay tier strictly reduces origin egress.
fleet:
	go run -race ./cmd/pslfleet -seed 7 -edges 200 -relays 4 -retain 128 \
		-versions 120 -duration 30s -base-poll 250ms -advance-every 3s \
		-churn 0.05 -chaos-rate 0.05 -chaos-tiers origin,relay -compare -check

# The thousand-edge acceptance run (several minutes under -race).
fleet-heavy:
	PSLFLEET_HEAVY=1 go test -race -count=1 -v -run 'TestFleetThousandEdges' ./internal/fleet/

# The full crash-consistency torture matrix under -race: every
# registered failpoint site in the dist-state, matcher-blob,
# submit-store, and replica-resume scenarios, each hit index, err and
# crash modes. A violated recovery invariant fails with the exact
# `scenario=... seed=... spec="..."` line that reproduces it.
torture:
	go test -race -count=1 -v -run 'Torture' ./internal/torture/

bench:
	go test -run '^$$' -bench . -benchmem ./internal/psl/ .

# Regenerate the machine-readable performance baseline.
bench-json:
	go run ./cmd/pslbench -out BENCH_matchers.json

# The CI perf gate: reduced pslbench run that fails when a batch row
# costs more than a cached single lookup or the HTTP batch advantage
# drops below 3x.
bench-scaling:
	go run ./cmd/pslbench -quick -check -out /tmp/bench-scaling.json

# One-iteration pass over every benchmark that backs an acceptance
# criterion, plus the zero-alloc guard tests — the CI sanity gate.
bench-sanity:
	go test -run '^$$' -bench 'BenchmarkMatcherAblation|BenchmarkPackedCompile9k' -benchtime=1x ./internal/psl/
	go test -run '^$$' -bench 'BenchmarkServeLookup|BenchmarkSweep' -benchtime=1x .
	go test -run '^$$' -bench 'BenchmarkPatchChain' -benchtime=1x ./internal/dist/
	go test -run 'ZeroAlloc' -count=1 ./internal/psl/ ./internal/serve/ ./internal/obs/ ./internal/resilience/

# Scrape a locally running pslserver and lint the exposition.
metrics-lint:
	curl -sf http://127.0.0.1:8353/metrics | go run ./cmd/promlint -min-families 12
