// Root benchmark harness: one benchmark per table and figure of the
// paper (see DESIGN.md's per-experiment index), plus the ablation
// benchmarks for the design choices called out there. Run with:
//
//	go test -bench=. -benchmem .
package repro

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/history"
	"repro/internal/iana"
	"repro/internal/obs"
	"repro/internal/repos"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/staleness"
)

// benchEnv is shared across benchmarks; generation cost is paid once,
// outside any timer.
var (
	benchOnce sync.Once
	benchE    *experiments.Env
)

func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchE = experiments.New(history.DefaultSeed, 0.2)
		benchE.Pipeline() // pre-build so per-artefact benches measure their own work
	})
	return benchE
}

// BenchmarkFig2Growth regenerates Figure 2: list size and component mix
// per version.
func BenchmarkFig2Growth(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.H.GrowthSeries()
	}
}

// BenchmarkTable1Taxonomy regenerates Table 1: the usage taxonomy.
func BenchmarkTable1Taxonomy(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		repos.Table1(e.Corpus)
	}
}

// BenchmarkFig3ListAge regenerates Figure 3: list-age distributions.
func BenchmarkFig3ListAge(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ListAgeReport(e.Corpus)
	}
}

// BenchmarkFig4Scatter regenerates Figure 4: the popularity scatter.
func BenchmarkFig4Scatter(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Scatter(e.Corpus)
	}
}

// BenchmarkFig5Sites regenerates Figure 5: sites per list version.
func BenchmarkFig5Sites(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Pipeline().SitesSeries()
	}
}

// BenchmarkFig6ThirdParty regenerates Figure 6: third-party requests
// per list version.
func BenchmarkFig6ThirdParty(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Pipeline().ThirdPartySeries()
	}
}

// BenchmarkFig7Divergence regenerates Figure 7: hostnames whose site
// differs from the latest list.
func BenchmarkFig7Divergence(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Pipeline().DivergenceSeries()
	}
}

// BenchmarkTable2MissingETLDs regenerates Table 2: the largest
// misclassified eTLDs with per-class project counts.
func BenchmarkTable2MissingETLDs(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Pipeline().MissingETLDs(e.Corpus)
	}
}

// BenchmarkTable3Projects regenerates the appendix Table 3: per-project
// recomputed missing-hostname counts.
func BenchmarkTable3Projects(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Pipeline().ProjectHarm(e.Corpus)
	}
}

// BenchmarkMisclassifiedSeries regenerates the extension series of
// requests erroneously treated as first-party.
func BenchmarkMisclassifiedSeries(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Pipeline().MisclassifiedFirstPartySeries()
	}
}

// BenchmarkStalenessCompare runs the update-policy Monte Carlo with the
// measured harm curve.
func BenchmarkStalenessCompare(b *testing.B) {
	e := env(b)
	harm := e.Pipeline().HarmCurve()
	cfg := staleness.Config{Seed: history.DefaultSeed, HorizonDays: 5 * 365, Trials: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		staleness.Compare(cfg, staleness.DefaultPolicies(), harm)
	}
}

// BenchmarkHarmByCategory regenerates the category harm breakdown.
func BenchmarkHarmByCategory(b *testing.B) {
	e := env(b)
	db := iana.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Pipeline().HarmByCategory(e.Corpus, db)
	}
}

// --- parallel per-version sweep --------------------------------------

// benchSweepSeqs spreads n version sequences evenly over the history.
func benchSweepSeqs(e *experiments.Env, n int) []int {
	seqs := make([]int, n)
	for i := range seqs {
		seqs[i] = i * (e.H.Len() - 1) / (n - 1)
	}
	return seqs
}

// BenchmarkSweepSerial recomputes the Figure 5/6/7 samples for 32
// versions on one worker over pre-compiled packed matchers — the serial
// baseline of the parallel-sweep acceptance criterion.
func BenchmarkSweepSerial(b *testing.B) {
	e := env(b)
	seqs := benchSweepSeqs(e, 32)
	e.Sweep(seqs, 1) // warm the compile cache; both variants time matching only
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Sweep(seqs, 1)
	}
}

// BenchmarkSweepParallel is the same recomputation fanned across
// GOMAXPROCS workers; the acceptance bar is >= 2x over the serial run
// at GOMAXPROCS >= 4.
func BenchmarkSweepParallel(b *testing.B) {
	e := env(b)
	seqs := benchSweepSeqs(e, 32)
	e.Sweep(seqs, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Sweep(seqs, 0)
	}
}

// BenchmarkStalenessCompareParallel is the Monte Carlo fanned across
// policies (bit-identical results to BenchmarkStalenessCompare's body).
func BenchmarkStalenessCompareParallel(b *testing.B) {
	e := env(b)
	harm := e.Pipeline().HarmCurve()
	cfg := staleness.Config{Seed: history.DefaultSeed, HorizonDays: 5 * 365, Trials: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		staleness.CompareParallel(cfg, staleness.DefaultPolicies(), harm, 0)
	}
}

// --- serving layer ----------------------------------------------------

// serveBenchEnv is shared by the serve benchmarks: a query service over
// a down-scaled history plus a deterministic host pool. Generation cost
// is paid once, outside any timer.
var (
	serveOnce  sync.Once
	serveSvc   *serve.Service
	serveHosts []string
)

func serveEnv(b *testing.B) (*serve.Service, []string) {
	b.Helper()
	serveOnce.Do(func() {
		h := history.Generate(history.Config{Seed: history.DefaultSeed, Versions: 60})
		serveSvc = serve.NewFromHistory(h, h.Len()-1, serve.Options{})
		serveHosts = loadgen.Hostnames(serveSvc.Current().List, 4096, 17)
	})
	return serveSvc, serveHosts
}

// BenchmarkServeLookup measures the query service's two lookup paths:
// "cached" replays a warm working set (pure cache hits), "cold" makes
// every query a never-seen hostname (normalize + match + cache insert).
// The gap between the two is the cache's value; the acceptance bar is
// cached >= 5x faster than cold.
func BenchmarkServeLookup(b *testing.B) {
	svc, hosts := serveEnv(b)
	const working = 1024
	b.Run("cached", func(b *testing.B) {
		for _, h := range hosts[:working] {
			if _, err := svc.Lookup(h); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Lookup(hosts[i%working]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			host := "h" + strconv.Itoa(i) + ".cold.example.com"
			if _, err := svc.Lookup(host); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeLookupInstrumented quantifies the observability tax on
// the cached hot path: the same cached-hit loop with the metrics layer
// on (the default: counters on every lookup, latency timing sampled
// 1/256) versus Options.DisableMetrics. The acceptance bar is <=5%
// overhead; compare the two sub-benchmarks' ns/op.
func BenchmarkServeLookupInstrumented(b *testing.B) {
	_, hosts := serveEnv(b)
	h := history.Generate(history.Config{Seed: history.DefaultSeed, Versions: 60})
	const working = 1024
	for name, opts := range map[string]serve.Options{
		"instrumented":   {},
		"uninstrumented": {DisableMetrics: true},
	} {
		b.Run(name, func(b *testing.B) {
			svc := serve.NewFromHistory(h, h.Len()-1, opts)
			if name == "instrumented" {
				svc.RegisterMetrics(obs.NewRegistry())
			}
			for _, h := range hosts[:working] {
				if _, err := svc.Lookup(h); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Lookup(hosts[i%working]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeLookupParallel drives the lock-free read path from all
// cores with a Zipf-distributed host mix, the shape the load generator
// uses; most lookups hit the cache, as production traffic would.
func BenchmarkServeLookupParallel(b *testing.B) {
	svc, hosts := serveEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(23))
		zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(hosts)-1))
		for pb.Next() {
			if _, err := svc.Lookup(hosts[zipf.Uint64()]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- ablations (DESIGN.md section 5) ---------------------------------

// BenchmarkAblationIncremental measures the changepoint pipeline:
// building per-host assignments and sweeping all 1,142 versions.
func BenchmarkAblationIncremental(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewPipeline(e.H, e.Snap)
		p.SitesSeries()
	}
}

// BenchmarkAblationFullRecompute measures the naive alternative at just
// 16 of the 1,142 versions — already far slower than the complete
// incremental sweep above.
func BenchmarkAblationFullRecompute(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 16; s++ {
			seq := s * (e.H.Len() - 1) / 15
			core.SitesAtVersionFull(e.H.ListAt(seq), e.Snap.Hosts)
		}
	}
}

// BenchmarkAblationInterningIDs counts distinct final sites through the
// pipeline's interned site ids.
func BenchmarkAblationInterningIDs(b *testing.B) {
	e := env(b)
	p := e.Pipeline()
	n := len(e.Snap.Hosts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seen := make(map[int32]struct{}, n)
		for hi := 0; hi < n; hi++ {
			seen[siteID(p, hi)] = struct{}{}
		}
		_ = len(seen)
	}
}

// BenchmarkAblationInterningStrings counts distinct final sites through
// raw site strings, the representation the interning avoids.
func BenchmarkAblationInterningStrings(b *testing.B) {
	e := env(b)
	p := e.Pipeline()
	n := len(e.Snap.Hosts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seen := make(map[string]struct{}, n)
		for hi := 0; hi < n; hi++ {
			seen[p.FinalSite(hi)] = struct{}{}
		}
		_ = len(seen)
	}
}

// siteID resolves a host's final interned site id without materialising
// the string.
func siteID(p *core.Pipeline, hi int) int32 {
	return p.FinalSiteID(hi)
}
