package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/history"
)

const seed = history.DefaultSeed

// runOut executes the tool's run function and captures its output.
func runOut(t *testing.T, args []string, listFile string, age, fromAge int) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(&b, args, listFile, age, fromAge, seed)
	return b.String(), err
}

// writeList writes a small valid list file.
func writeList(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "list.dat")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const smallList = `
// ===BEGIN ICANN DOMAINS===
com
uk
co.uk
// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===
github.io
// ===END PRIVATE DOMAINS===
`

func TestSuffixCommand(t *testing.T) {
	p := writeList(t, smallList)
	out, err := runOut(t, []string{"suffix", "www.example.co.uk", "alice.github.io"}, p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "www.example.co.uk\tco.uk\ticann") {
		t.Errorf("output: %q", out)
	}
	if !strings.Contains(out, "alice.github.io\tgithub.io\tprivate/implicit") {
		t.Errorf("output: %q", out)
	}
}

func TestSiteCommand(t *testing.T) {
	p := writeList(t, smallList)
	out, err := runOut(t, []string{"site", "a.b.example.com", "co.uk"}, p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "a.b.example.com\texample.com") {
		t.Errorf("output: %q", out)
	}
	if !strings.Contains(out, "no registrable domain") {
		t.Errorf("bare suffix should be flagged: %q", out)
	}
}

func TestSameSiteAndThirdParty(t *testing.T) {
	p := writeList(t, smallList)
	out, err := runOut(t, []string{"samesite", "a.example.com", "b.example.com"}, p, 0, 0)
	if err != nil || !strings.Contains(out, "same-site=true") {
		t.Errorf("samesite: %q, %v", out, err)
	}
	out, err = runOut(t, []string{"thirdparty", "a.github.io", "b.github.io"}, p, 0, 0)
	if err != nil || !strings.Contains(out, "third-party") {
		t.Errorf("thirdparty: %q, %v", out, err)
	}
}

func TestGroupCommand(t *testing.T) {
	p := writeList(t, smallList)
	out, err := runOut(t, []string{"group", "www.example.com", "cdn.example.com", "alice.github.io"}, p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "example.com\n  www.example.com\n  cdn.example.com") &&
		!strings.Contains(out, "example.com\n  cdn.example.com") {
		t.Errorf("grouping output: %q", out)
	}
}

func TestLintCommand(t *testing.T) {
	good := writeList(t, smallList)
	out, err := runOut(t, []string{"lint", good}, "", 0, 0)
	if err != nil || !strings.Contains(out, "0 findings") {
		t.Errorf("clean lint: %q, %v", out, err)
	}
	bad := writeList(t, "com\na..b\n")
	out, err = runOut(t, []string{"lint", bad}, "", 0, 0)
	if err == nil {
		t.Errorf("lint of bad file should error; output %q", out)
	}
	if !strings.Contains(out, "unparseable") {
		t.Errorf("lint output: %q", out)
	}
}

func TestDiffCommand(t *testing.T) {
	out, err := runOut(t, []string{"diff"}, "", 0, 825)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "+") || !strings.Contains(out, "rules)") {
		t.Errorf("diff output: %.200q", out)
	}
	// myshopify.com was added ~700 days before t, so it is in the diff
	// from an 825-day-old list to the latest.
	if !strings.Contains(out, "+ myshopify.com") {
		t.Errorf("diff should include myshopify.com: %.400q", out)
	}
}

func TestErrors(t *testing.T) {
	p := writeList(t, smallList)
	cases := [][]string{
		{"unknown"},
		{"suffix"},
		{"samesite", "only-one"},
		{"thirdparty", "a"},
	}
	for _, args := range cases {
		if _, err := runOut(t, args, p, 0, 0); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
	if _, err := runOut(t, []string{"diff"}, p, 0, 825); err == nil {
		t.Error("diff with -list should error")
	}
	// lint without -list and without an argument has no target.
	if _, err := runOut(t, []string{"lint"}, "", 0, 0); err == nil {
		t.Error("lint without a target should error")
	}
}
