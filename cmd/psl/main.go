// Command psl queries the public suffix list: the suffix (eTLD) and
// site (eTLD+1) of a domain, same-site and third-party decisions, and
// diffs between historical versions.
//
// Usage:
//
//	psl [flags] suffix <domain>...
//	psl [flags] site <domain>...
//	psl [flags] samesite <a> <b>
//	psl [flags] thirdparty <page-host> <request-host>
//	psl [flags] diff
//
// Flags:
//
//	-list FILE   read the list from FILE instead of the generated history
//	-age DAYS    use the historical version in effect DAYS before
//	             2022-12-08 (default 0 = newest)
//	-from DAYS   (diff) older version age
//	-seed N      history generator seed
//
// Without -list, the tool evaluates against the simulated list history
// this repository generates (see DESIGN.md).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/history"
	"repro/internal/psl"
)

func main() {
	var (
		listFile = flag.String("list", "", "read the list from this file")
		age      = flag.Int("age", 0, "use the version this many days before 2022-12-08")
		fromAge  = flag.Int("from", 825, "diff: age of the older version in days")
		seed     = flag.Int64("seed", history.DefaultSeed, "history generator seed")
	)
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}

	if err := run(os.Stdout, args, *listFile, *age, *fromAge, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "psl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: psl [flags] <command> [args]

commands:
  suffix <domain>...             print the public suffix (eTLD) of each domain
  site <domain>...               print the registrable domain (site, eTLD+1)
  samesite <a> <b>               report whether two hosts share a site
  thirdparty <page> <request>    classify a request as first- or third-party
  group [host]...                group hostnames (args or stdin) into sites
  lint [file]                    check a list file for structural problems
  diff                           rules added/removed between -from and -age

flags:
`)
	flag.PrintDefaults()
}

func run(w io.Writer, args []string, listFile string, age, fromAge int, seed int64) error {
	var h *history.History
	load := func(ageDays int) (*psl.List, error) {
		if listFile != "" {
			f, err := os.Open(listFile)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return psl.Parse(f)
		}
		if h == nil {
			h = history.Generate(history.Config{Seed: seed})
		}
		return h.ListAt(h.IndexForAge(ageDays)), nil
	}

	l, err := load(age)
	if err != nil {
		return err
	}

	switch cmd, rest := args[0], args[1:]; cmd {
	case "suffix":
		if len(rest) == 0 {
			return fmt.Errorf("suffix: need at least one domain")
		}
		for _, d := range rest {
			suffix, icann, err := l.PublicSuffix(d)
			if err != nil {
				return err
			}
			section := "private/implicit"
			if icann {
				section = "icann"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\n", d, suffix, section)
		}
	case "site":
		if len(rest) == 0 {
			return fmt.Errorf("site: need at least one domain")
		}
		for _, d := range rest {
			site, err := l.Site(d)
			if err != nil {
				fmt.Fprintf(w, "%s\t(no registrable domain: %v)\n", d, err)
				continue
			}
			fmt.Fprintf(w, "%s\t%s\n", d, site)
		}
	case "samesite":
		if len(rest) != 2 {
			return fmt.Errorf("samesite: need exactly two hosts")
		}
		fmt.Fprintf(w, "%s and %s: same-site=%v\n", rest[0], rest[1], l.SameSite(rest[0], rest[1]))
	case "thirdparty":
		if len(rest) != 2 {
			return fmt.Errorf("thirdparty: need page host and request host")
		}
		kind := "first-party"
		if l.IsThirdParty(rest[0], rest[1]) {
			kind = "third-party"
		}
		fmt.Fprintf(w, "request to %s from page %s: %s\n", rest[1], rest[0], kind)
	case "lint":
		target := listFile
		if len(rest) == 1 {
			target = rest[0]
		}
		if target == "" {
			return fmt.Errorf("lint: need a file (-list or argument)")
		}
		f, err := os.Open(target)
		if err != nil {
			return err
		}
		defer f.Close()
		findings, err := psl.Lint(f)
		if err != nil {
			return err
		}
		for _, fd := range findings {
			fmt.Fprintf(w, "%s:%s\n", target, fd)
		}
		fmt.Fprintf(w, "%s: %d findings\n", target, len(findings))
		if psl.MaxSeverity(findings) >= psl.SeverityError {
			return fmt.Errorf("lint: %s has errors", target)
		}
	case "group":
		// Group hostnames (stdin or args) into sites — the browser-UI
		// use case the paper describes.
		hosts := rest
		if len(hosts) == 0 {
			sc := bufio.NewScanner(os.Stdin)
			for sc.Scan() {
				if h := strings.TrimSpace(sc.Text()); h != "" {
					hosts = append(hosts, h)
				}
			}
			if err := sc.Err(); err != nil {
				return err
			}
		}
		groups := make(map[string][]string)
		for _, h := range hosts {
			site := l.SiteOrSelf(h)
			groups[site] = append(groups[site], h)
		}
		sites := make([]string, 0, len(groups))
		for site := range groups {
			sites = append(sites, site)
		}
		sort.Strings(sites)
		for _, site := range sites {
			fmt.Fprintf(w, "%s\n", site)
			for _, h := range groups[site] {
				fmt.Fprintf(w, "  %s\n", h)
			}
		}
	case "diff":
		if listFile != "" {
			return fmt.Errorf("diff: requires the generated history (drop -list)")
		}
		old, err := load(fromAge)
		if err != nil {
			return err
		}
		d := psl.DiffLists(old, l)
		fmt.Fprintf(w, "from %s (%d rules) to %s (%d rules): +%d -%d\n",
			old.Version, old.Len(), l.Version, l.Len(), len(d.Added), len(d.Removed))
		for _, r := range d.Added {
			fmt.Fprintf(w, "+ %s\n", r)
		}
		for _, r := range d.Removed {
			fmt.Fprintf(w, "- %s\n", r)
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}
