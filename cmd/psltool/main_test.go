package main

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dist"
	"repro/internal/dnssim"
	"repro/internal/history"
	"repro/internal/submit"
)

func TestParseChangeArg(t *testing.T) {
	c, err := parseChangeArg("add:private:*.cdn.example")
	if err != nil || c.Op != "add" || c.Section != "private" || c.Rule != "*.cdn.example" {
		t.Fatalf("parseChangeArg: %+v, %v", c, err)
	}
	// The rule part may itself contain colons only via SplitN bounds —
	// a two-part argument is malformed.
	if _, err := parseChangeArg("add:private"); err == nil {
		t.Fatal("two-part change accepted")
	}
	if _, err := parseChangeArg("plainrule"); err == nil {
		t.Fatal("bare rule accepted")
	}
}

func TestOwners(t *testing.T) {
	cs, err := parseChanges([]string{
		"add:private:*.cdn.example",
		"add:private:!keep.cdn.example",
		"remove:icann:com",
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := owners(cs)
	if err != nil {
		t.Fatal(err)
	}
	// The wildcard's base and the exception's parent are the same
	// owner; "com" is its own.
	want := []string{"cdn.example", "com"}
	if len(got) != len(want) {
		t.Fatalf("owners %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("owners %v, want %v", got, want)
		}
	}
}

// TestSubcommandsAgainstServer drives the id → authorize → submit →
// status protocol against an in-process write path, checking each
// subcommand's exit code contract.
func TestSubcommandsAgainstServer(t *testing.T) {
	h := history.Generate(history.Config{Versions: 10})
	o := dist.NewOrigin(h)
	o.SetHead(h.Len() - 1)
	zone := dnssim.NewZone()
	p, err := submit.New(o, submit.Config{Resolver: zone})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	p.Register(mux)
	mux.Handle("/debug/dns", zone.Handler())
	ts := httptest.NewServer(mux)
	defer ts.Close()

	const change = "add:private:tool.cmdtest.example"
	head0 := o.Head()
	if code := runID([]string{change}); code != 0 {
		t.Fatalf("id exit %d", code)
	}
	if code := runAuthorize([]string{"-server", ts.URL, change}); code != 0 {
		t.Fatalf("authorize exit %d", code)
	}
	if code := runSubmit([]string{"-server", ts.URL, change}); code != 0 {
		t.Fatalf("authorized submit exit %d", code)
	}
	cs, _ := parseChanges([]string{change})
	id := submit.ComputeID(submit.Request{Changes: cs})
	if code := runStatus([]string{"-server", ts.URL, id}); code != 0 {
		t.Fatalf("status exit %d", code)
	}
	if o.Head() != head0+1 {
		t.Fatalf("head %d after published submission, want %d", o.Head(), head0+1)
	}

	// An unauthorized change is a rejection: exit 1.
	if code := runSubmit([]string{"-server", ts.URL, "add:private:other.cmdtest.example"}); code != 1 {
		t.Fatalf("unauthorized submit exit %d, want 1", code)
	}
	// Unknown ID: exit 1. Malformed change: exit 2.
	if code := runStatus([]string{"-server", ts.URL, "sub-0000000000000000"}); code != 1 {
		t.Fatalf("unknown status exit %d, want 1", code)
	}
	if code := runID([]string{"nonsense"}); code != 2 {
		t.Fatalf("malformed id exit %d, want 2", code)
	}
}
