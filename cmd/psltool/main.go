// Command psltool is the submitter's side of the list-maintenance
// write path: it speaks to a pslserver running with -submit and walks a
// rule change through the publication protocol — compute the
// content-addressed submission ID, plant the _psl TXT authorization
// records in the simulated DNS zone, submit, and poll the verdict.
//
// Changes are positional arguments in op:section:rule form:
//
//	psltool id add:private:*.cdn.example
//	psltool authorize -server http://127.0.0.1:8353 add:private:*.cdn.example
//	psltool submit -server http://127.0.0.1:8353 -contact ops@cdn.example add:private:*.cdn.example
//	psltool status -server http://127.0.0.1:8353 sub-0123456789abcdef
//
// Subcommands:
//
//	id         print the submission ID for a set of changes — the value
//	           the owner must serve in the _psl TXT record; purely
//	           local, no server contact
//	authorize  plant the _psl TXT record for every changed suffix into
//	           the server's simulated zone (POST /debug/dns), standing
//	           in for the owner editing real DNS
//	submit     POST the changes to /v1/submit and print the verdict
//	           trail; exit 0 when published or pending, 1 when rejected
//	status     fetch one submission record by ID
//
// Shared flags:
//
//	-server URL  pslserver base URL (default http://127.0.0.1:8353)
//	-json        print the full record as JSON instead of the summary
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/submit"
)

// parseChangeArg parses one op:section:rule argument.
func parseChangeArg(arg string) (submit.Change, error) {
	parts := strings.SplitN(arg, ":", 3)
	if len(parts) != 3 {
		return submit.Change{}, fmt.Errorf("change %q is not op:section:rule (e.g. add:private:*.cdn.example)", arg)
	}
	return submit.Change{Op: parts[0], Section: parts[1], Rule: parts[2]}, nil
}

// parseChanges converts every positional argument.
func parseChanges(args []string) ([]submit.Change, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("no changes given (want op:section:rule arguments)")
	}
	var cs []submit.Change
	for _, a := range args {
		c, err := parseChangeArg(a)
		if err != nil {
			return nil, err
		}
		cs = append(cs, c)
	}
	return cs, nil
}

// owners lists the distinct suffixes whose _psl TXT record must carry
// the submission ID.
func owners(changes []submit.Change) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	for _, c := range changes {
		rule, _, err := submit.ParseChange(c)
		if err != nil {
			return nil, err
		}
		o := submit.AuthOwner(rule)
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out, nil
}

// client is the shared HTTP client; the write path answers immediately,
// so a short deadline keeps CLI failures sharp.
var client = &http.Client{Timeout: 30 * time.Second}

// postJSON POSTs v and decodes the response into out, tolerating the
// write path's verdict-carrying non-2xx statuses.
func postJSON(url string, v any, out any) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil {
		if err := json.Unmarshal(blob, out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode response (status %d): %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode, nil
}

// printRecord renders one submission record for humans: the state line,
// then every stage verdict with its findings indented beneath.
func printRecord(w io.Writer, s *submit.Submission) {
	fmt.Fprintf(w, "%s  %s", s.ID, s.State)
	if s.State == submit.StateRejected {
		fmt.Fprintf(w, " at stage %s", s.RejectedStage)
	}
	if s.State == submit.StatePublished {
		fmt.Fprintf(w, " as v%04d (%s)", s.PublishedSeq, s.Fingerprint)
	}
	fmt.Fprintln(w)
	for _, v := range s.Verdicts {
		mark := "ok"
		if !v.Passed {
			mark = "FAIL"
		}
		fmt.Fprintf(w, "  %-13s %-4s %s\n", v.Stage, mark, v.Detail)
		for _, f := range v.Findings {
			fmt.Fprintf(w, "                     - %s\n", f)
		}
	}
}

// emit prints the record as JSON or summary and returns the exit code.
func emit(s *submit.Submission, asJSON bool) int {
	if asJSON {
		b, _ := json.MarshalIndent(s, "", "  ")
		fmt.Println(string(b))
	} else {
		printRecord(os.Stdout, s)
	}
	if s.State == submit.StateRejected {
		return 1
	}
	return 0
}

func runID(args []string) int {
	fs := flag.NewFlagSet("psltool id", flag.ExitOnError)
	fs.Parse(args)
	changes, err := parseChanges(fs.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "psltool id: %v\n", err)
		return 2
	}
	req := submit.Request{Changes: changes}
	fmt.Println(submit.ComputeID(req))
	if ows, err := owners(changes); err == nil {
		for _, o := range ows {
			fmt.Printf("# plant this ID in TXT _psl.%s\n", o)
		}
	}
	return 0
}

func runAuthorize(args []string) int {
	fs := flag.NewFlagSet("psltool authorize", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8353", "pslserver base URL")
	fs.Parse(args)
	changes, err := parseChanges(fs.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "psltool authorize: %v\n", err)
		return 2
	}
	id := submit.ComputeID(submit.Request{Changes: changes})
	ows, err := owners(changes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psltool authorize: %v\n", err)
		return 2
	}
	base := strings.TrimRight(*server, "/")
	for _, o := range ows {
		rec := map[string]string{"name": "_psl." + o, "type": "TXT", "data": id}
		status, err := postJSON(base+"/debug/dns", rec, nil)
		if err != nil || status < 200 || status > 299 {
			fmt.Fprintf(os.Stderr, "psltool authorize: plant _psl.%s: status %d, %v\n", o, status, err)
			return 1
		}
		fmt.Printf("planted TXT _psl.%s -> %s\n", o, id)
	}
	return 0
}

func runSubmit(args []string) int {
	fs := flag.NewFlagSet("psltool submit", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8353", "pslserver base URL")
	contact := fs.String("contact", "", "submitter contact recorded on the submission")
	reason := fs.String("reason", "", "free-form reason recorded on the submission")
	asJSON := fs.Bool("json", false, "print the full record as JSON")
	fs.Parse(args)
	changes, err := parseChanges(fs.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "psltool submit: %v\n", err)
		return 2
	}
	req := submit.Request{Changes: changes, Contact: *contact, Reason: *reason}
	var rec submit.Submission
	status, err := postJSON(strings.TrimRight(*server, "/")+submit.SubmitPath, req, &rec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psltool submit: %v\n", err)
		return 1
	}
	if rec.ID == "" {
		fmt.Fprintf(os.Stderr, "psltool submit: server answered status %d without a record\n", status)
		return 1
	}
	return emit(&rec, *asJSON)
}

func runStatus(args []string) int {
	fs := flag.NewFlagSet("psltool status", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8353", "pslserver base URL")
	asJSON := fs.Bool("json", false, "print the full record as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "psltool status: want exactly one submission ID")
		return 2
	}
	url := strings.TrimRight(*server, "/") + submit.SubmissionPrefix + fs.Arg(0)
	resp, err := client.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psltool status: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		fmt.Fprintf(os.Stderr, "psltool status: unknown submission %s\n", fs.Arg(0))
		return 1
	}
	var rec submit.Submission
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		fmt.Fprintf(os.Stderr, "psltool status: decode: %v\n", err)
		return 1
	}
	return emit(&rec, *asJSON)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: psltool <id|authorize|submit|status> [flags] args...

  id        CHANGE...       print the submission ID (op:section:rule changes)
  authorize CHANGE...       plant _psl TXT records on the server's zone
  submit    CHANGE...       submit the changes and print the verdicts
  status    ID              fetch one submission record`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var code int
	switch os.Args[1] {
	case "id":
		code = runID(os.Args[2:])
	case "authorize":
		code = runAuthorize(os.Args[2:])
	case "submit":
		code = runSubmit(os.Args[2:])
	case "status":
		code = runStatus(os.Args[2:])
	default:
		usage()
	}
	os.Exit(code)
}
