// Command pslobs inspects a running pslserver fleet through its
// observability plane: it scrapes each node's /healthz, /metrics,
// /debug/traces and /debug/propagation and renders one fleet summary —
// per-node tier, seq, replication lag and matcher-install provenance,
// per-stage propagation latencies (p50/p99 from the
// psl_propagation_stage_seconds histograms), and the slowest retained
// traces across the fleet. Nodes that mount the write path's
// /debug/submissions endpoint additionally report their submission
// store (pending/accepted/rejected/published counts and per-submission
// outcomes); nodes without it stay quiet.
//
//	pslobs http://127.0.0.1:8353 http://127.0.0.1:8453 http://127.0.0.1:8553
//
// Flags:
//
//	-json            emit the scraped fleet summary as JSON
//	-watch D         re-scrape and re-render every D (0 = scrape once)
//	-timeout D       per-request scrape timeout (default 5s)
//	-top N           slowest traces listed per node (default 3)
//	-assert-stages S comma-separated lifecycle stages; exit 1 unless the
//	                 LAST node has a seq timeline containing all of them
//	                 in canonical order (the CI propagation check)
//	-assert-trace    exit 1 unless at least one trace ID was retained by
//	                 two or more scraped nodes — proof that trace
//	                 propagation crossed a hop
//
// Exit status 0 when every node scraped cleanly and all assertions
// held, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/submit"
)

// stageSummary is one lifecycle stage's dwell-time distribution on one
// node, read back from its psl_propagation_stage_seconds buckets. P50
// and P99 are conservative upper bounds (the bucket boundary the
// quantile falls in).
type stageSummary struct {
	Stage string  `json:"stage"`
	Count float64 `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// nodeReport is everything pslobs learned about one node.
type nodeReport struct {
	URL        string             `json:"url"`
	Err        string             `json:"error,omitempty"`
	Status     string             `json:"status,omitempty"`
	Source     string             `json:"source,omitempty"`
	Tier       string             `json:"tier,omitempty"`
	Version    string             `json:"version,omitempty"`
	Seq        int                `json:"seq"`
	Lag        int64              `json:"lag_seqs"`
	Goroutines float64            `json:"goroutines"`
	Installs   map[string]float64 `json:"matcher_installs,omitempty"`
	Stages     []stageSummary     `json:"stages,omitempty"`
	Timelines  []obs.SeqTimeline  `json:"timelines,omitempty"`
	Slowest    []obs.TraceRecord  `json:"slowest_traces,omitempty"`
	// Submissions carries the node's write-path store summary. Nil when
	// the node does not mount /debug/submissions (followers, or an
	// origin without -submit) — the section simply stays quiet.
	Submissions *submit.DebugSummary `json:"submissions,omitempty"`

	traceIDs map[string]bool
}

// healthView is the subset of /healthz pslobs reads.
type healthView struct {
	Status  string `json:"status"`
	Version string `json:"version"`
	Seq     int    `json:"seq"`
	Source  string `json:"source"`
	LagSeqs int64  `json:"lag_seqs"`
}

// tracesView mirrors the /debug/traces document.
type tracesView struct {
	Recent []obs.TraceRecord `json:"recent"`
	Slow   []obs.TraceRecord `json:"slow"`
}

// propagationView mirrors the /debug/propagation document.
type propagationView struct {
	Tier string            `json:"tier"`
	Seqs []obs.SeqTimeline `json:"seqs"`
}

// getJSON fetches one endpoint and decodes its JSON body into v.
func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	// /healthz deliberately answers 503 when degraded but still carries
	// the full body; anything else non-2xx is a scrape failure.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.Unmarshal(body, v)
}

// bucket is one cumulative histogram bucket read from an exposition.
type bucket struct {
	le float64
	n  float64
}

// quantileUpperBound reads the q-quantile's conservative upper bound
// from cumulative buckets (sorted ascending by le). Returns 0 for an
// empty histogram.
func quantileUpperBound(buckets []bucket, q float64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].n
	if total == 0 {
		return 0
	}
	target := q * total
	for _, b := range buckets {
		if b.n >= target {
			return b.le
		}
	}
	return buckets[len(buckets)-1].le
}

// scrapeMetrics reads the node's exposition and fills the
// metrics-derived report fields.
func scrapeMetrics(client *http.Client, base string, rep *nodeReport) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s/metrics: status %d", base, resp.StatusCode)
	}
	samples, err := obs.ReadSamples(resp.Body)
	if err != nil {
		return err
	}

	stageBuckets := map[string][]bucket{}
	stageCounts := map[string]float64{}
	for _, s := range samples {
		switch s.Name {
		case "psl_propagation_stage_seconds_bucket":
			stage, _ := s.Label("stage")
			leStr, _ := s.Label("le")
			le, perr := strconv.ParseFloat(strings.Replace(leStr, "+Inf", "Inf", 1), 64)
			if stage == "" || perr != nil {
				continue
			}
			stageBuckets[stage] = append(stageBuckets[stage], bucket{le: le, n: s.Value})
		case "psl_propagation_stage_seconds_count":
			stage, _ := s.Label("stage")
			stageCounts[stage] = s.Value
		case "psl_serve_matcher_installs_total":
			src, _ := s.Label("source")
			if rep.Installs == nil {
				rep.Installs = map[string]float64{}
			}
			rep.Installs[src] = s.Value
		case "psl_runtime_goroutines":
			rep.Goroutines = s.Value
		}
	}
	for _, stage := range obs.JournalStages {
		bs := stageBuckets[stage]
		if stageCounts[stage] == 0 {
			continue
		}
		sort.Slice(bs, func(a, b int) bool { return bs[a].le < bs[b].le })
		rep.Stages = append(rep.Stages, stageSummary{
			Stage: stage,
			Count: stageCounts[stage],
			P50:   quantileUpperBound(bs, 0.50),
			P99:   quantileUpperBound(bs, 0.99),
		})
	}
	return nil
}

// scrapeNode collects one node's full report. A partially reachable
// node reports what it could and carries the first error.
func scrapeNode(client *http.Client, base string, top int) *nodeReport {
	rep := &nodeReport{URL: base, Seq: -1, traceIDs: map[string]bool{}}
	fail := func(err error) *nodeReport {
		rep.Err = err.Error()
		return rep
	}

	var hv healthView
	if err := getJSON(client, base+"/healthz", &hv); err != nil {
		return fail(err)
	}
	rep.Status, rep.Version, rep.Seq, rep.Source, rep.Lag = hv.Status, hv.Version, hv.Seq, hv.Source, hv.LagSeqs

	if err := scrapeMetrics(client, base, rep); err != nil {
		return fail(err)
	}

	var tv tracesView
	if err := getJSON(client, base+obs.TracesPath, &tv); err != nil {
		return fail(err)
	}
	all := append(append([]obs.TraceRecord(nil), tv.Recent...), tv.Slow...)
	for _, tr := range all {
		if tr.TraceID != "" {
			rep.traceIDs[tr.TraceID] = true
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Duration > all[b].Duration })
	seen := map[string]bool{}
	for _, tr := range all {
		key := tr.TraceID + "/" + tr.SpanID
		if seen[key] {
			continue
		}
		seen[key] = true
		rep.Slowest = append(rep.Slowest, tr)
		if len(rep.Slowest) >= top {
			break
		}
	}

	var pv propagationView
	if err := getJSON(client, base+obs.PropagationPath, &pv); err != nil {
		return fail(err)
	}
	rep.Tier = pv.Tier
	rep.Timelines = pv.Seqs

	// The write-path store is optional: only an origin running with
	// -submit mounts it, so an absent endpoint is not an error.
	if sum, ok := scrapeSubmissions(client, base); ok {
		rep.Submissions = sum
	}
	return rep
}

// scrapeSubmissions reads /debug/submissions when the node serves it.
// A 404 (endpoint not mounted) reports ok=false with no error — the
// read path has nothing to say about submissions.
func scrapeSubmissions(client *http.Client, base string) (*submit.DebugSummary, bool) {
	resp, err := client.Get(base + submit.DebugPath)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var sum submit.DebugSummary
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&sum); err != nil {
		return nil, false
	}
	return &sum, true
}

// formatSeconds renders a seconds value at operator resolution.
func formatSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1:
		return fmt.Sprintf("%.0fms", s*1000)
	default:
		return fmt.Sprintf("%.2gs", s)
	}
}

// render writes the human fleet summary.
func render(w io.Writer, nodes []*nodeReport) {
	tw := newTable(w)
	tw.row("NODE", "TIER", "SOURCE", "STATUS", "VERSION", "SEQ", "LAG", "GOROUTINES", "INSTALLS c/b/r")
	for _, n := range nodes {
		if n.Err != "" {
			tw.row(n.URL, "-", "-", "unreachable: "+n.Err, "-", "-", "-", "-", "-")
			continue
		}
		installs := fmt.Sprintf("%.0f/%.0f/%.0f",
			n.Installs["compile"], n.Installs["blob"], n.Installs["reuse"])
		tw.row(n.URL, n.Tier, n.Source, n.Status, n.Version,
			strconv.Itoa(n.Seq), strconv.FormatInt(n.Lag, 10),
			fmt.Sprintf("%.0f", n.Goroutines), installs)
	}
	tw.flush()

	for _, n := range nodes {
		if n.Err != "" || len(n.Stages) == 0 {
			continue
		}
		fmt.Fprintf(w, "\npropagation stages (%s, %s):\n", n.URL, n.Tier)
		for _, st := range n.Stages {
			fmt.Fprintf(w, "  %-13s n=%-5.0f p50<=%-8s p99<=%s\n",
				st.Stage, st.Count, formatSeconds(st.P50), formatSeconds(st.P99))
		}
	}

	for _, n := range nodes {
		if n.Err != "" || n.Submissions == nil {
			continue
		}
		s := n.Submissions
		fmt.Fprintf(w, "\nsubmissions (%s): pending=%d checking=%d accepted=%d rejected=%d published=%d\n",
			n.URL, s.Pending, s.Checking, s.Accepted, s.Rejected, s.Published)
		for _, e := range s.Submissions {
			line := fmt.Sprintf("  %s %s", e.ID, e.State)
			if e.RejectedStage != "" {
				line += " at " + e.RejectedStage
			}
			if e.State == submit.StatePublished {
				line += fmt.Sprintf(" as v%04d", e.PublishedSeq)
			}
			fmt.Fprintln(w, line)
		}
	}

	for _, n := range nodes {
		if n.Err != "" || len(n.Slowest) == 0 {
			continue
		}
		fmt.Fprintf(w, "\nslowest traces (%s):\n", n.URL)
		for _, tr := range n.Slowest {
			line := fmt.Sprintf("  %-6s %-7s %s %s -> %d in %s trace=%s",
				tr.Kind, tr.Method, tr.Path, "", tr.Status, tr.Duration.Round(time.Millisecond), tr.TraceID)
			if tr.Err != "" {
				line += " err=" + tr.Err
			}
			fmt.Fprintln(w, strings.Join(strings.Fields(line), " "))
		}
	}
}

// table is a minimal column aligner (text/tabwriter would do, but the
// fixed two-space gutter reads better in CI logs).
type table struct {
	w    io.Writer
	rows [][]string
}

func newTable(w io.Writer) *table { return &table{w: w} }

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) flush() {
	widths := map[int]int{}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i == len(r)-1 {
				fmt.Fprint(t.w, c)
			} else {
				fmt.Fprintf(t.w, "%-*s  ", widths[i], c)
			}
		}
		fmt.Fprintln(t.w)
	}
}

// assertStages checks that the last scraped node retains a seq whose
// timeline contains every required stage in canonical order. It returns
// the matching seq.
func assertStages(nodes []*nodeReport, stages []string) (int, error) {
	for _, s := range stages {
		if obs.StageRank(s) < 0 {
			return -1, fmt.Errorf("unknown stage %q (want one of %s)", s, strings.Join(obs.JournalStages, ", "))
		}
	}
	last := nodes[len(nodes)-1]
	if last.Err != "" {
		return -1, fmt.Errorf("last node %s unreachable: %s", last.URL, last.Err)
	}
	for _, tl := range last.Timelines {
		if timelineContainsInOrder(tl, stages) {
			return tl.Seq, nil
		}
	}
	return -1, fmt.Errorf("%s: no seq timeline contains stages %s in order", last.URL, strings.Join(stages, ","))
}

// timelineContainsInOrder reports whether tl's events contain every
// wanted stage with positions respecting the wanted order.
func timelineContainsInOrder(tl obs.SeqTimeline, wanted []string) bool {
	pos := -1
	for _, stage := range wanted {
		found := -1
		for i, ev := range tl.Events {
			if ev.Stage == stage {
				found = i
				break
			}
		}
		if found < 0 || found < pos {
			return false
		}
		pos = found
	}
	return true
}

// assertTraceSpansNodes checks that at least one trace ID was retained
// by two or more nodes — the cross-hop propagation proof. With a single
// node there is nothing to span, so it degrades to "has any trace".
func assertTraceSpansNodes(nodes []*nodeReport) (string, error) {
	counts := map[string]int{}
	for _, n := range nodes {
		for id := range n.traceIDs {
			counts[id]++
		}
	}
	if len(nodes) == 1 {
		for id := range counts {
			return id, nil
		}
		return "", fmt.Errorf("single node retained no traces")
	}
	best, bestN := "", 0
	for id, c := range counts {
		if c > bestN {
			best, bestN = id, c
		}
	}
	if bestN >= 2 {
		return best, nil
	}
	return "", fmt.Errorf("no trace ID appears on two or more of the %d scraped nodes", len(nodes))
}

// runOnce scrapes the fleet, renders or JSON-dumps it, and applies the
// assertions. It returns false when anything failed.
func runOnce(client *http.Client, urls []string, top int, asJSON bool, stages []string, assertTrace bool, w io.Writer) bool {
	nodes := make([]*nodeReport, len(urls))
	for i, u := range urls {
		nodes[i] = scrapeNode(client, strings.TrimRight(u, "/"), top)
	}
	if asJSON {
		b, err := json.MarshalIndent(nodes, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pslobs: %v\n", err)
			return false
		}
		fmt.Fprintln(w, string(b))
	} else {
		render(w, nodes)
	}
	ok := true
	for _, n := range nodes {
		if n.Err != "" {
			fmt.Fprintf(os.Stderr, "pslobs: %s: %s\n", n.URL, n.Err)
			ok = false
		}
	}
	if len(stages) > 0 {
		seq, err := assertStages(nodes, stages)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pslobs: assert-stages: %v\n", err)
			ok = false
		} else {
			fmt.Fprintf(w, "\nassert-stages: seq %d carries %s\n", seq, strings.Join(stages, ","))
		}
	}
	if assertTrace {
		id, err := assertTraceSpansNodes(nodes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pslobs: assert-trace: %v\n", err)
			ok = false
		} else {
			fmt.Fprintf(w, "assert-trace: trace %s spans nodes\n", id)
		}
	}
	return ok
}

func main() {
	var (
		asJSON      = flag.Bool("json", false, "emit the fleet summary as JSON")
		watch       = flag.Duration("watch", 0, "re-scrape and re-render at this interval (0 = once)")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request scrape timeout")
		top         = flag.Int("top", 3, "slowest traces listed per node")
		stagesFlag  = flag.String("assert-stages", "", "comma-separated stages the last node must journal in order")
		assertTrace = flag.Bool("assert-trace", false, "require one trace ID retained by two or more nodes")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pslobs [flags] URL [URL...]")
		os.Exit(2)
	}
	var stages []string
	if *stagesFlag != "" {
		for _, s := range strings.Split(*stagesFlag, ",") {
			if s = strings.TrimSpace(s); s != "" {
				stages = append(stages, s)
			}
		}
	}
	client := &http.Client{Timeout: *timeout}
	for {
		ok := runOnce(client, flag.Args(), *top, *asJSON, stages, *assertTrace, os.Stdout)
		if *watch <= 0 {
			if !ok {
				os.Exit(1)
			}
			return
		}
		fmt.Println(strings.Repeat("-", 72))
		time.Sleep(*watch)
	}
}
