package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeNode assembles a node endpoint set from real obs instruments, so
// pslobs is tested against the exact wire formats the servers emit.
type fakeNode struct {
	ring    *obs.TraceRing
	journal *obs.Journal
	srv     *httptest.Server
}

func newFakeNode(t *testing.T, tier string, seq int, lag int64) *fakeNode {
	t.Helper()
	reg := obs.NewRegistry()
	n := &fakeNode{
		ring:    obs.NewTraceRing(8, 100*time.Millisecond),
		journal: obs.NewJournal(tier, 0),
	}
	n.ring.RegisterMetrics(reg)
	n.journal.RegisterMetrics(reg)
	obs.RegisterRuntimeMetrics(reg)
	installs := new(obs.Counter)
	installs.Add(3)
	reg.MustRegister("psl_serve_matcher_installs_total", "Matcher installs by source.",
		obs.Labels{{"source", "blob"}}, installs)

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","version":"v-test","seq":%d,"source":"follower","lag_seqs":%d}`, seq, lag)
	})
	mux.Handle("/metrics", reg.Handler())
	mux.Handle(obs.TracesPath, n.ring.Handler())
	mux.Handle(obs.PropagationPath, n.journal.Handler())
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

// journalFullLifecycle records every canonical stage for seq with
// strictly increasing timestamps.
func journalFullLifecycle(j *obs.Journal, seq int) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i, stage := range obs.JournalStages {
		j.RecordAt(seq, stage, base.Add(time.Duration(i)*50*time.Millisecond))
	}
}

func TestScrapeNodeAndAssertions(t *testing.T) {
	a := newFakeNode(t, "relay", 7, 1)
	b := newFakeNode(t, "edge", 7, 0)
	journalFullLifecycle(a.journal, 7)
	journalFullLifecycle(b.journal, 7)

	// One trace crossed the hop: both rings retained records with the
	// same trace ID; the edge's copy is slow enough for the slow ring.
	a.ring.Record(&obs.TraceRecord{
		Time: time.Now(), Kind: "server", TraceID: "0af7651916cd43dd8448eb211c80319c",
		SpanID: "b7ad6b7169203331", Method: "GET", Path: "/dist/manifest", Status: 200,
		Duration: 20 * time.Millisecond,
	})
	b.ring.Record(&obs.TraceRecord{
		Time: time.Now(), Kind: "client", TraceID: "0af7651916cd43dd8448eb211c80319c",
		SpanID: "00f067aa0ba902b7", ParentID: "b7ad6b7169203331", Method: "GET",
		Path: "/dist/manifest", Status: 200, Duration: 300 * time.Millisecond,
	})
	b.ring.Record(&obs.TraceRecord{
		Time: time.Now(), Kind: "server", TraceID: "ffffffffffffffffffffffffffffffff",
		SpanID: "1111111111111111", Method: "GET", Path: "/v1/lookup", Status: 200,
		Duration: time.Millisecond,
	})

	client := &http.Client{Timeout: 5 * time.Second}
	var out bytes.Buffer
	ok := runOnce(client, []string{a.srv.URL, b.srv.URL}, 3, false,
		[]string{"published", "fetched", "verified", "installed"}, true, &out)
	if !ok {
		t.Fatalf("runOnce failed; output:\n%s", out.String())
	}
	text := out.String()
	for _, want := range []string{
		"relay", "edge", "follower", "v-test",
		"assert-stages: seq 7",
		"assert-trace: trace 0af7651916cd43dd8448eb211c80319c spans nodes",
		"propagation stages",
		"slowest traces",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestScrapeNodeFields(t *testing.T) {
	n := newFakeNode(t, "edge", 42, 2)
	journalFullLifecycle(n.journal, 42)
	client := &http.Client{Timeout: 5 * time.Second}

	rep := scrapeNode(client, n.srv.URL, 3)
	if rep.Err != "" {
		t.Fatalf("scrape error: %s", rep.Err)
	}
	if rep.Tier != "edge" || rep.Seq != 42 || rep.Lag != 2 || rep.Source != "follower" {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Installs["blob"] != 3 {
		t.Fatalf("installs = %v, want blob=3", rep.Installs)
	}
	if rep.Goroutines <= 0 {
		t.Fatalf("goroutines = %v, want > 0 from runtime metrics", rep.Goroutines)
	}
	// Every stage after the first journals a 50ms delta; the p50 upper
	// bound must be a bucket boundary at or above that.
	var fetched *stageSummary
	for i := range rep.Stages {
		if rep.Stages[i].Stage == "fetched" {
			fetched = &rep.Stages[i]
		}
	}
	if fetched == nil || fetched.Count != 1 || fetched.P50 < 0.05 {
		t.Fatalf("fetched stage = %+v", fetched)
	}
}

func TestAssertStagesFailsOnMissingStage(t *testing.T) {
	n := newFakeNode(t, "edge", 3, 0)
	n.journal.RecordAt(3, "published", time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	n.journal.RecordAt(3, "fetched", time.Date(2026, 8, 8, 12, 0, 1, 0, time.UTC))

	client := &http.Client{Timeout: 5 * time.Second}
	var out bytes.Buffer
	if runOnce(client, []string{n.srv.URL}, 3, false, []string{"published", "installed"}, false, &out) {
		t.Fatal("assert-stages passed without an installed event")
	}
}

func TestAssertStagesRejectsUnknownStage(t *testing.T) {
	rep := &nodeReport{URL: "x"}
	if _, err := assertStages([]*nodeReport{rep}, []string{"teleported"}); err == nil {
		t.Fatal("accepted unknown stage name")
	}
}

func TestTimelineContainsInOrder(t *testing.T) {
	tl := obs.SeqTimeline{Seq: 1, Events: []obs.JournalEvent{
		{Stage: "published"}, {Stage: "fetched"}, {Stage: "installed"},
	}}
	if !timelineContainsInOrder(tl, []string{"published", "installed"}) {
		t.Fatal("subset in order rejected")
	}
	if timelineContainsInOrder(tl, []string{"installed", "published"}) {
		t.Fatal("reversed order accepted")
	}
	if timelineContainsInOrder(tl, []string{"published", "served_first"}) {
		t.Fatal("missing stage accepted")
	}
}

func TestAssertTraceNeedsSharedID(t *testing.T) {
	a := &nodeReport{URL: "a", traceIDs: map[string]bool{"t1": true}}
	b := &nodeReport{URL: "b", traceIDs: map[string]bool{"t2": true}}
	if _, err := assertTraceSpansNodes([]*nodeReport{a, b}); err == nil {
		t.Fatal("disjoint trace IDs accepted as spanning")
	}
	b.traceIDs["t1"] = true
	id, err := assertTraceSpansNodes([]*nodeReport{a, b})
	if err != nil || id != "t1" {
		t.Fatalf("id=%q err=%v, want t1", id, err)
	}
}

func TestQuantileUpperBound(t *testing.T) {
	bs := []bucket{{le: 0.1, n: 5}, {le: 0.5, n: 9}, {le: 1, n: 10}}
	if got := quantileUpperBound(bs, 0.5); got != 0.1 {
		t.Fatalf("p50 = %v, want 0.1", got)
	}
	if got := quantileUpperBound(bs, 0.99); got != 1.0 {
		t.Fatalf("p99 = %v, want 1", got)
	}
	if got := quantileUpperBound(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
}

func TestJSONOutput(t *testing.T) {
	n := newFakeNode(t, "origin", 9, 0)
	journalFullLifecycle(n.journal, 9)
	client := &http.Client{Timeout: 5 * time.Second}
	var out bytes.Buffer
	if !runOnce(client, []string{n.srv.URL}, 3, true, nil, false, &out) {
		t.Fatalf("runOnce failed:\n%s", out.String())
	}
	var reps []nodeReport
	if err := json.Unmarshal(out.Bytes(), &reps); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(reps) != 1 || reps[0].Tier != "origin" || reps[0].Seq != 9 {
		t.Fatalf("reports = %+v", reps)
	}
}

func TestUnreachableNodeFailsRun(t *testing.T) {
	client := &http.Client{Timeout: 500 * time.Millisecond}
	var out bytes.Buffer
	if runOnce(client, []string{"http://127.0.0.1:1"}, 3, false, nil, false, &out) {
		t.Fatal("unreachable node reported success")
	}
}
