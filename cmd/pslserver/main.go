// Command pslserver publishes the simulated public-suffix-list history
// over HTTP, standing in for publicsuffix.org in the examples and in
// update-strategy experiments.
//
//	GET /list/public_suffix_list.dat   the configured current version
//	GET /v/<seq>                       a specific historical version
//
// Flags:
//
//	-addr HOST:PORT   listen address (default 127.0.0.1:8353)
//	-age DAYS         publish the version in effect DAYS before
//	                  2022-12-08 (default 0 = newest)
//	-failrate F       fail this fraction of requests with 503, to
//	                  exercise client fallback paths
//	-seed N           history generator seed
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/fetch"
	"repro/internal/history"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8353", "listen address")
		age      = flag.Int("age", 0, "publish the version this many days before 2022-12-08")
		failRate = flag.Float64("failrate", 0, "fraction of requests to fail with 503")
		seed     = flag.Int64("seed", history.DefaultSeed, "history generator seed")
	)
	flag.Parse()

	h := history.Generate(history.Config{Seed: *seed})
	s := fetch.NewServer(h)
	seq := h.IndexForAge(*age)
	s.SetCurrent(seq)
	s.SetFailureRate(*failRate)

	meta := h.Meta(seq)
	fmt.Printf("pslserver: serving v%04d (%s, %d rules) on http://%s%s (failrate %.2f)\n",
		meta.Seq, meta.Date.Format("2006-01-02"), meta.Rules, *addr, fetch.ListPath, *failRate)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
