// Command pslserver publishes the simulated public-suffix-list history
// over HTTP, standing in for publicsuffix.org in the examples and in
// update-strategy experiments, and mounts the production query API of
// internal/serve next to the raw-list endpoints. It also speaks the
// internal/dist snapshot-distribution protocol on both sides: every
// server is an origin (the /dist/ endpoints are always mounted), and
// with -follow it runs as a replica instead, bootstrapping its list
// from another pslserver and hot-swapping each verified delta into the
// query API with zero downtime.
//
//	GET /list/public_suffix_list.dat   the configured current version
//	GET /v/<seq>                       a specific historical version
//	GET /v1/lookup?host=H[&version=N]  eTLD / eTLD+1 JSON answer
//	POST /v1/batch                     batched lookups, one snapshot per
//	                                   batch (NDJSON or binary framing)
//	GET /v1/version                    current list version metadata
//	GET /healthz                       liveness, cache and admission stats
//	GET /metrics                       Prometheus text exposition
//	GET /dist/manifest                 origin head descriptor (JSON)
//	GET /dist/full/S                   full snapshot blob of version S
//	GET /dist/patch/F/T                binary delta taking F to T
//
// With -submit the list-maintenance write path is mounted too (origin
// mode only):
//
//	POST /v1/submit                    submit a rule change; the staged
//	                                   pipeline (lint, semantic,
//	                                   authorization, risk, publish)
//	                                   answers with the full verdict
//	                                   trail
//	GET /v1/submission/{id}            one submission record
//	GET /debug/submissions             store summary for pslobs
//	GET/POST /debug/dns                the simulated _psl DNS zone;
//	                                   submitters plant their TXT
//	                                   records here (psltool authorize)
//
// Flags:
//
//	-addr HOST:PORT   listen address (default 127.0.0.1:8353)
//	-age DAYS         publish the version in effect DAYS before
//	                  2022-12-08 (default 0 = newest)
//	-failrate F       fail this fraction of raw-list requests with 503,
//	                  to exercise client fallback paths
//	-seed N           history generator seed
//	-versions N       number of history versions to generate (default
//	                  1142, the full simulated history)
//	-max-in-flight N  admission bound for /v1/lookup (503 above it)
//	-matcher NAME     matcher implementation for lookups:
//	                  packed (default), map, trie, sorted or linear
//	-follow URL       run as a replica of the origin pslserver at URL:
//	                  no local history; the list arrives via /dist/
//	-follow-from N    first version to bootstrap from (-1 = origin head)
//	-follow-poll D    replica poll interval (default 1s)
//	-blob             (follower) feed the query API from the origin's
//	                  compiled matcher blobs (/dist/blob/{seq}): each
//	                  verified snapshot installs the origin-compiled
//	                  PackedMatcher instead of recompiling locally;
//	                  blob fetch failures silently fall back to a local
//	                  compile (requires -matcher packed)
//	-state-dir DIR    (follower) persist each verified snapshot to DIR
//	                  and resume from it on restart, skipping the
//	                  full-blob bootstrap
//	-relay            (follower) re-serve the /dist/ protocol downstream
//	                  from the verified snapshots this replica installs,
//	                  making the instance a mid-tier fan-out point;
//	                  multi-step patch requests are answered with one
//	                  compacted delta
//	-retain N         (relay) verified snapshots kept in the downstream
//	                  serving window (default 64)
//	-max-lag N        /healthz answers 503 while replication lag
//	                  exceeds N versions (0 = disabled)
//	-max-snapshot-age D  /healthz answers 503 while the served snapshot
//	                  is older than D (0 = disabled)
//	-request-timeout D   server-side bound on any request's context;
//	                  callers can only shrink it via the propagated
//	                  X-Request-Deadline-Ms header (default 30s,
//	                  0 = header-only)
//	-debug-addr ADDR  also serve net/http/pprof and /metrics on this
//	                  address (default off); keep it loopback-only
//	-submit           mount the write path (origin mode only)
//	-submit-state-dir DIR  persist submission records to DIR and restore
//	                  them on restart
//	-submit-scale F   generate a simulated web population at scale F for
//	                  the risk stage (0 = score synthetic probes only)
//	-submit-max-flip F  reject submissions that flip more than this
//	                  fraction of the population's registrable domains
//	                  (default 0.05)
//	-failpoints SPEC  arm deterministic fault-injection sites for the
//	                  whole process, seeded from -seed (e.g.
//	                  'dist.state.rename=err(1);submit.persist.sync=crash(0.2,seed=7)');
//	                  err terms surface as the named syscall failing,
//	                  crash terms abort the process at the site — the
//	                  supervisor-restart experiment. Armed or not, every
//	                  site exports psl_failpoint_triggers_total{name}
//	-quiet            suppress JSON access logs on stderr
//
// In follower mode /healthz and /v1/version report "source":"follower"
// plus the live lag_seqs behind the origin; a caught-up follower shows
// lag_seqs 0. With -max-lag / -max-snapshot-age armed, /healthz turns
// into a real readiness probe: it answers 503 with the violated limits
// in the body while the instance would serve stale data.
//
// Every route runs behind the resilience middleware: handler panics
// become 500s (counted in psl_http_panics_total) instead of dead
// connections, and each request's context carries a deadline — the
// smaller of -request-timeout and the client's propagated budget. Both
// listeners get full slow-client protection (read/write/idle timeouts
// and a header-size cap).
//
// Requests are logged as one JSON line each on stderr, carrying the
// request ID the server minted (or honoured, if the client sent
// X-Request-Id) and per-stage timings.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/dnssim"
	"repro/internal/experiments"
	"repro/internal/failpoint"
	"repro/internal/fetch"
	"repro/internal/history"
	"repro/internal/httparchive"
	"repro/internal/obs"
	"repro/internal/psl"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/submit"
)

// matcherConstructors maps -matcher flag values to constructors. A nil
// constructor selects serve's default (the packed compiled matcher).
var matcherConstructors = map[string]func(*psl.List) psl.Matcher{
	"packed": nil,
	"map":    func(l *psl.List) psl.Matcher { return psl.NewMapMatcher(l) },
	"trie":   func(l *psl.List) psl.Matcher { return psl.NewTrieMatcher(l) },
	"sorted": func(l *psl.List) psl.Matcher { return psl.NewSortedMatcher(l) },
	"linear": func(l *psl.List) psl.Matcher { return psl.NewLinearMatcher(l) },
}

// config is the fully validated flag set; parseFlags fails before any
// listener is bound or history generated, so a bad invocation exits
// without side effects.
type config struct {
	addr        string
	debugAddr   string
	age         int
	failRate    float64
	seed        int64
	versions    int
	maxInFlight int
	matcher     string
	quiet       bool

	follow     string
	followFrom int
	followPoll time.Duration
	blob       bool
	stateDir   string
	relay      bool
	retain     int

	maxLag         int64
	maxSnapshotAge time.Duration
	requestTimeout time.Duration

	submit         bool
	submitStateDir string
	submitScale    float64
	submitMaxFlip  float64

	failpoints string

	newMatcher func(*psl.List) psl.Matcher
}

// parseFlags parses and validates the command line. All validation
// errors surface here, never as a crash after the socket is open.
func parseFlags(args []string) (config, error) {
	var cfg config
	fs := flag.NewFlagSet("pslserver", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8353", "listen address")
	fs.StringVar(&cfg.debugAddr, "debug-addr", "", "serve pprof and /metrics on this extra address (off when empty)")
	fs.IntVar(&cfg.age, "age", 0, "publish the version this many days before 2022-12-08")
	fs.Float64Var(&cfg.failRate, "failrate", 0, "fraction of raw-list requests to fail with 503")
	fs.Int64Var(&cfg.seed, "seed", history.DefaultSeed, "history generator seed")
	fs.IntVar(&cfg.versions, "versions", 0, "history versions to generate (0 = full default history)")
	fs.IntVar(&cfg.maxInFlight, "max-in-flight", serve.DefaultMaxInFlight, "admission bound for /v1/lookup")
	fs.StringVar(&cfg.matcher, "matcher", "packed", "matcher implementation: packed, map, trie, sorted or linear")
	fs.StringVar(&cfg.follow, "follow", "", "run as a replica of the origin pslserver at this base URL")
	fs.IntVar(&cfg.followFrom, "follow-from", -1, "first version to bootstrap from (-1 = origin head)")
	fs.DurationVar(&cfg.followPoll, "follow-poll", time.Second, "replica poll interval")
	fs.BoolVar(&cfg.blob, "blob", false, "feed the query API from the origin's compiled matcher blobs (requires -follow)")
	fs.StringVar(&cfg.stateDir, "state-dir", "", "persist verified follower snapshots here and resume from them on restart")
	fs.BoolVar(&cfg.relay, "relay", false, "re-serve the /dist/ protocol downstream of the followed origin (requires -follow)")
	fs.IntVar(&cfg.retain, "retain", 0, "verified snapshots a relay keeps for downstream serving (0 = default 64; requires -relay)")
	fs.Int64Var(&cfg.maxLag, "max-lag", 0, "healthz answers 503 above this replication lag in versions (0 = disabled)")
	fs.DurationVar(&cfg.maxSnapshotAge, "max-snapshot-age", 0, "healthz answers 503 above this snapshot age (0 = disabled)")
	fs.DurationVar(&cfg.requestTimeout, "request-timeout", 30*time.Second, "server-side request deadline (0 = propagated header only)")
	fs.BoolVar(&cfg.submit, "submit", false, "mount the list-maintenance write path (/v1/submit; origin mode only)")
	fs.StringVar(&cfg.submitStateDir, "submit-state-dir", "", "persist submission records here (requires -submit)")
	fs.Float64Var(&cfg.submitScale, "submit-scale", 0, "web-population scale for submission risk scoring (0 = probes only; requires -submit)")
	fs.Float64Var(&cfg.submitMaxFlip, "submit-max-flip", 0, "reject submissions flipping more than this fraction of the population (0 = default 0.05; requires -submit)")
	fs.StringVar(&cfg.failpoints, "failpoints", "", "deterministic fault-injection spec (name=err(p,...);name=crash(p,...)), seeded from -seed")
	fs.BoolVar(&cfg.quiet, "quiet", false, "suppress JSON access logs")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	nm, ok := matcherConstructors[cfg.matcher]
	if !ok {
		return config{}, fmt.Errorf("unknown -matcher %q (want packed, map, trie, sorted or linear)", cfg.matcher)
	}
	cfg.newMatcher = nm
	if cfg.failRate < 0 || cfg.failRate > 1 {
		return config{}, fmt.Errorf("-failrate %v out of range [0, 1]", cfg.failRate)
	}
	if cfg.age < 0 {
		return config{}, fmt.Errorf("-age %d is negative", cfg.age)
	}
	if cfg.maxInFlight < 1 {
		return config{}, fmt.Errorf("-max-in-flight %d must be at least 1", cfg.maxInFlight)
	}
	if cfg.addr == "" {
		return config{}, fmt.Errorf("-addr must not be empty")
	}
	if cfg.versions != 0 && cfg.versions < 2 {
		return config{}, fmt.Errorf("-versions %d must be at least 2 (or 0 for the full history)", cfg.versions)
	}
	if cfg.followPoll <= 0 {
		return config{}, fmt.Errorf("-follow-poll %v must be positive", cfg.followPoll)
	}
	if cfg.followFrom < -1 {
		return config{}, fmt.Errorf("-follow-from %d must be -1 (head) or a version seq", cfg.followFrom)
	}
	if cfg.follow == "" && cfg.followFrom != -1 {
		return config{}, fmt.Errorf("-follow-from requires -follow")
	}
	if cfg.follow == "" && cfg.stateDir != "" {
		return config{}, fmt.Errorf("-state-dir requires -follow (origins own their history)")
	}
	if cfg.blob && cfg.follow == "" {
		return config{}, fmt.Errorf("-blob requires -follow (origins compile their own matchers)")
	}
	if cfg.blob && cfg.matcher != "packed" {
		return config{}, fmt.Errorf("-blob serves origin-compiled packed matchers; it conflicts with -matcher %q", cfg.matcher)
	}
	if cfg.relay && cfg.follow == "" {
		return config{}, fmt.Errorf("-relay requires -follow (an origin already serves /dist/)")
	}
	if cfg.retain != 0 && !cfg.relay {
		return config{}, fmt.Errorf("-retain requires -relay")
	}
	if cfg.retain < 0 {
		return config{}, fmt.Errorf("-retain %d is negative", cfg.retain)
	}
	if cfg.follow == "" && cfg.maxLag != 0 {
		return config{}, fmt.Errorf("-max-lag requires -follow (an origin never lags itself)")
	}
	if cfg.maxLag < 0 {
		return config{}, fmt.Errorf("-max-lag %d is negative", cfg.maxLag)
	}
	if cfg.maxSnapshotAge < 0 {
		return config{}, fmt.Errorf("-max-snapshot-age %v is negative", cfg.maxSnapshotAge)
	}
	if cfg.requestTimeout < 0 {
		return config{}, fmt.Errorf("-request-timeout %v is negative", cfg.requestTimeout)
	}
	if cfg.submit && cfg.follow != "" {
		return config{}, fmt.Errorf("-submit requires origin mode (followers replicate, they do not accept changes)")
	}
	if !cfg.submit {
		if cfg.submitStateDir != "" {
			return config{}, fmt.Errorf("-submit-state-dir requires -submit")
		}
		if cfg.submitScale != 0 {
			return config{}, fmt.Errorf("-submit-scale requires -submit")
		}
		if cfg.submitMaxFlip != 0 {
			return config{}, fmt.Errorf("-submit-max-flip requires -submit")
		}
	}
	if cfg.submitScale < 0 {
		return config{}, fmt.Errorf("-submit-scale %v is negative", cfg.submitScale)
	}
	if cfg.submitMaxFlip < 0 || cfg.submitMaxFlip > 1 {
		return config{}, fmt.Errorf("-submit-max-flip %v out of range [0, 1]", cfg.submitMaxFlip)
	}
	if _, err := failpoint.Parse(cfg.failpoints); err != nil {
		return config{}, fmt.Errorf("-failpoints: %w", err)
	}
	return cfg, nil
}

// obsPlane bundles one node's propagation-observability state: the
// completed-trace ring behind /debug/traces, the per-seq lifecycle
// journal behind /debug/propagation, and the runtime telemetry
// families. One plane per process, whatever the serving mode.
type obsPlane struct {
	ring    *obs.TraceRing
	journal *obs.Journal
}

// newObsPlane builds the plane for one node tier ("origin", "relay", or
// "edge" — the journal's tier label).
func newObsPlane(tier string) *obsPlane {
	return &obsPlane{
		ring:    obs.NewTraceRing(0, 0),
		journal: obs.NewJournal(tier, 0),
	}
}

// mount registers the plane's metric families (trace ring, propagation
// histograms, runtime telemetry) on reg and its debug endpoints on mux.
func (p *obsPlane) mount(mux *http.ServeMux, reg *obs.Registry) {
	p.ring.RegisterMetrics(reg)
	p.journal.RegisterMetrics(reg)
	obs.RegisterRuntimeMetrics(reg)
	failpoint.RegisterMetrics(reg)
	mux.Handle(obs.TracesPath, p.ring.Handler())
	mux.Handle(obs.PropagationPath, p.journal.Handler())
}

// registerProcessMetrics adds the process-level gauges shared by both
// serving modes.
func registerProcessMetrics(reg *obs.Registry) {
	start := time.Now()
	reg.MustRegister("psl_process_uptime_seconds", "Seconds since the server process assembled its handler.", nil,
		obs.GaugeFunc(func() float64 { return time.Since(start).Seconds() }))
	reg.MustRegister("psl_process_goroutines", "Live goroutines in the server process.", nil,
		obs.GaugeFunc(func() float64 { return float64(runtime.NumGoroutine()) }))
}

// resilient wraps a mux in the shared HTTP middleware — panic recovery
// outermost, then per-request deadlines — and registers the middleware
// counters, so every route of every listener reports through the same
// two families.
func resilient(mux http.Handler, cfg config, reg *obs.Registry) http.Handler {
	hm := &resilience.HTTPMetrics{}
	hm.Register(reg)
	return resilience.Recover(&hm.Panics,
		resilience.Deadline(cfg.requestTimeout, &hm.DeadlineExceeded, mux))
}

// newHandler assembles the combined origin handler: the query API owns
// its three routes, /dist/ serves the distribution protocol, /metrics
// exposes the shared registry, and the raw-list server owns everything
// else — all behind the resilience middleware. The returned service,
// list server, origin and registry are exposed for tests and runtime
// reconfiguration.
func newHandler(h *history.History, seq int, cfg config, plane *obsPlane) (http.Handler, *serve.Service, *fetch.Server, *dist.Origin, *obs.Registry) {
	fs := fetch.NewServer(h)
	fs.SetCurrent(seq)
	fs.SetFailureRate(cfg.failRate)

	svc := serve.NewFromHistory(h, seq, serve.Options{
		MaxInFlight: cfg.maxInFlight,
		NewMatcher:  cfg.newMatcher,
		MatcherName: cfg.matcher,
	})
	svc.SetHealthLimits(cfg.maxLag, cfg.maxSnapshotAge)
	svc.SetJournal(plane.journal)

	origin := dist.NewOrigin(h)
	origin.SetHead(seq)
	origin.SetJournal(plane.journal)

	reg := obs.NewRegistry()
	svc.RegisterMetrics(reg)
	fs.RegisterMetrics(reg)
	origin.RegisterMetrics(reg)
	experiments.RegisterSweepMetrics(reg)
	registerProcessMetrics(reg)

	mux := http.NewServeMux()
	mux.Handle(serve.LookupPath, svc)
	mux.Handle(serve.BatchPath, svc)
	mux.Handle(serve.VersionPath, svc)
	mux.Handle(serve.HealthPath, svc)
	mux.Handle(serve.MetricsPath, reg.Handler())
	mux.Handle(dist.Prefix, origin)
	mux.Handle("/", fs)
	plane.mount(mux, reg)

	if cfg.submit {
		// The write path: a simulated _psl DNS zone (records planted via
		// POST /debug/dns, the stand-in for real-world DNS control) and
		// the staged submission pipeline. A published submission swaps
		// the query API and raw-list tier to the new version in-process,
		// and the /dist/ endpoints replicate it to followers.
		zone := dnssim.NewZone()
		var pop *httparchive.Snapshot
		if cfg.submitScale > 0 {
			pop = httparchive.Generate(httparchive.Config{Seed: cfg.seed, Scale: cfg.submitScale}, h)
		}
		pipe, err := submit.New(origin, submit.Config{
			StateDir:        cfg.submitStateDir,
			Resolver:        zone,
			Population:      pop,
			MaxFlipFraction: cfg.submitMaxFlip,
			OnPublish: func(m dist.Manifest, l *psl.List) {
				svc.SwapVerified(l, m.Seq, m.Fingerprint, nil)
				fs.SetCurrent(m.Seq)
			},
		})
		if err != nil {
			// Only a corrupt -submit-state-dir can fail here; the process
			// has not bound a socket yet, so fail loudly.
			log.Fatalf("pslserver: submit pipeline: %v", err)
		}
		pipe.RegisterMetrics(reg)
		pipe.Register(mux)
		mux.Handle("/debug/dns", zone.Handler())
	}
	return resilient(mux, cfg, reg), svc, fs, origin, reg
}

// newFollowerHandler assembles the replica-mode handler: the query API
// serves the bootstrapped list (no local history, so no raw-list
// endpoints and no versioned lookups), tagged as a follower with a live
// lag probe, and /metrics carries the replica's families. With a
// non-nil relay the /dist/ endpoints come back — served from the
// relay's verified snapshot window rather than a local history — and
// the instance reports as source "relay". fp is the verified rules
// fingerprint of the bootstrap snapshot; m, when non-nil, is a
// pre-built matcher (the blob-fed path) installed without compiling.
func newFollowerHandler(l *psl.List, seq int, fp string, m psl.Matcher, rep *dist.Replica, rl *dist.Relay, cfg config, plane *obsPlane) (http.Handler, *serve.Service, *obs.Registry) {
	svc := serve.NewWith(l, seq, fp, m, serve.Options{
		MaxInFlight: cfg.maxInFlight,
		NewMatcher:  cfg.newMatcher,
		MatcherName: cfg.matcher,
	})
	source := "follower"
	if rl != nil {
		source = "relay"
	}
	svc.SetSource(source, rep.Lag)
	svc.SetHealthLimits(cfg.maxLag, cfg.maxSnapshotAge)
	svc.SetJournal(plane.journal)

	reg := obs.NewRegistry()
	svc.RegisterMetrics(reg)
	rep.RegisterMetrics(reg)
	if rl != nil {
		rl.RegisterMetrics(reg)
	}
	registerProcessMetrics(reg)

	mux := http.NewServeMux()
	mux.Handle(serve.LookupPath, svc)
	mux.Handle(serve.BatchPath, svc)
	mux.Handle(serve.VersionPath, svc)
	mux.Handle(serve.HealthPath, svc)
	mux.Handle(serve.MetricsPath, reg.Handler())
	if rl != nil {
		mux.Handle(dist.Prefix, rl)
	}
	plane.mount(mux, reg)
	return resilient(mux, cfg, reg), svc, reg
}

// debugHandler builds the opt-in diagnostics mux: the full pprof suite
// plus a second /metrics mount, kept off the public listener.
func debugHandler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle(serve.MetricsPath, reg.Handler())
	return mux
}

// bootstrapFollower fetches the initial snapshot from the origin,
// retrying until it succeeds or ctx is cancelled; a replica is allowed
// to start before (or outlive a restart of) its origin.
func bootstrapFollower(ctx context.Context, rep *dist.Replica, cfg config, stdout io.Writer) (*psl.List, int, error) {
	for attempt := 1; ; attempt++ {
		l, seq, err := rep.Bootstrap(ctx, cfg.followFrom)
		if err == nil {
			return l, seq, nil
		}
		if ctx.Err() != nil {
			return nil, 0, ctx.Err()
		}
		if attempt == 1 || attempt%10 == 0 {
			fmt.Fprintf(stdout, "pslserver: bootstrap from %s failed (attempt %d): %v\n", cfg.follow, attempt, err)
		}
		select {
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		case <-time.After(cfg.followPoll):
		}
	}
}

// run binds the listeners and serves until ctx is cancelled. The
// announce line on stdout carries the bound addresses (meaningful when
// -addr ends in :0), which is what the tests and the CI scrape step
// parse.
func run(ctx context.Context, cfg config, stdout io.Writer) error {
	// Fault sites arm before any component is built or listener bound,
	// so the very first durable write of the process already runs under
	// the spec; parseFlags validated it, so Arm cannot fail here.
	if cfg.failpoints != "" {
		if err := failpoint.Arm(cfg.failpoints, cfg.seed); err != nil {
			return fmt.Errorf("failpoints: %w", err)
		}
		defer failpoint.DisarmAll()
		fmt.Fprintf(stdout, "pslserver: failpoints armed: %s (seed %d)\n", cfg.failpoints, cfg.seed)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	var debugLn net.Listener
	if cfg.debugAddr != "" {
		debugLn, err = net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return err
		}
		defer debugLn.Close()
	}

	var handler http.Handler
	var reg *obs.Registry
	var plane *obsPlane
	if cfg.follow != "" {
		tier := "edge"
		if cfg.relay {
			tier = "relay"
		}
		plane = newObsPlane(tier)
		rep := dist.NewReplica(cfg.follow, dist.ReplicaOptions{
			PollInterval:   cfg.followPoll,
			RequestTimeout: cfg.requestTimeout,
			StateDir:       cfg.stateDir,
			FetchBlobs:     cfg.blob,
			Ring:           plane.ring,
			Journal:        plane.journal,
		})
		// The relay claims the replica's OnVerified hook, so it must be
		// built before Bootstrap runs — the bootstrap snapshot is the
		// relay's first servable window entry.
		var rl *dist.Relay
		if cfg.relay {
			rl = dist.NewRelay(rep, dist.RelayOptions{Retain: cfg.retain})
		}
		// A persisted snapshot beats a full-blob bootstrap: the restored
		// state is checksum- and fingerprint-verified, and the poll loop
		// patches forward from it. Any restore failure (first boot,
		// corrupt file) falls back to bootstrapping from the origin.
		var l *psl.List
		var seq int
		restored := false
		if cfg.stateDir != "" {
			if sl, rseq, rerr := rep.RestoreState(); rerr == nil {
				l, seq, restored = sl, rseq, true
				fmt.Fprintf(stdout, "pslserver: restored v%04d from %s\n", rseq, cfg.stateDir)
			} else if !os.IsNotExist(rerr) {
				fmt.Fprintf(stdout, "pslserver: state restore failed (%v), bootstrapping from origin\n", rerr)
			}
		}
		if !restored {
			l, seq, err = bootstrapFollower(ctx, rep, cfg, stdout)
			if err != nil {
				return err
			}
		} else if rl != nil {
			// RestoreState bypasses the verified-install path, so the
			// relay window is seeded explicitly from the trusted local
			// snapshot.
			rl.Seed(l, seq)
		}
		// The blob-fed fast path: reuse the persisted matcher blob (a
		// restart pays zero compiles), else fetch the origin-compiled
		// blob for the bootstrap snapshot. Both are verified against the
		// snapshot's own fingerprint; any failure just means the service
		// compiles once locally, exactly as without -blob.
		fp := l.Fingerprint()
		var matcher psl.Matcher
		if cfg.blob {
			if restored && cfg.stateDir != "" {
				if pm, lerr := dist.LoadMatcherBlob(cfg.stateDir, seq, fp); lerr == nil {
					matcher = pm
					fmt.Fprintf(stdout, "pslserver: reusing persisted matcher blob for v%04d (zero compiles)\n", seq)
				}
			}
			if matcher == nil {
				if pm := rep.FetchMatcherBlob(ctx, seq, fp); pm != nil {
					matcher = pm
					fmt.Fprintf(stdout, "pslserver: bootstrap matcher fed from /dist/blob/%d (zero compiles)\n", seq)
				}
			}
		}
		var svc *serve.Service
		handler, svc, reg = newFollowerHandler(l, seq, fp, matcher, rep, rl, cfg, plane)
		// Installs flow through SwapVerified so a hop whose rules are
		// byte-identical to the installed snapshot (fingerprint match)
		// reuses the live matcher instead of recompiling, and a hop that
		// arrived with a verified blob matcher installs it directly.
		rep.OnInstall = func(l *psl.List, seq int, fp string, m psl.Matcher) { svc.SwapVerified(l, seq, fp, m) }

		// The poll loop gets its own context so shutdown can drain it
		// deterministically: cancel, then wait for Run to return before
		// run() itself returns — no goroutine outlives the command.
		fctx, fcancel := context.WithCancel(ctx)
		var followerWG sync.WaitGroup
		followerWG.Add(1)
		go func() {
			defer followerWG.Done()
			rep.Run(fctx)
		}()
		defer func() {
			fcancel()
			followerWG.Wait()
		}()

		mode := "following"
		if cfg.relay {
			mode = "relaying"
		}
		fmt.Fprintf(stdout, "pslserver: %s %s from v%04d (%d rules) on http://%s, query API at %s, metrics at %s\n",
			mode, cfg.follow, seq, l.Len(), ln.Addr(), serve.LookupPath, serve.MetricsPath)
	} else {
		h := history.Generate(history.Config{Seed: cfg.seed, Versions: cfg.versions})
		seq := h.IndexForAge(cfg.age)
		plane = newObsPlane("origin")
		handler, _, _, _, reg = newHandler(h, seq, cfg, plane)

		meta := h.Meta(seq)
		fmt.Fprintf(stdout, "pslserver: serving v%04d (%s, %d rules) on http://%s%s (failrate %.2f), query API at %s, metrics at %s\n",
			meta.Seq, meta.Date.Format("2006-01-02"), meta.Rules, ln.Addr(), fetch.ListPath, cfg.failRate, serve.LookupPath, serve.MetricsPath)
	}

	var logger *slog.Logger
	if !cfg.quiet {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	handler = obs.AccessLogTo(logger, plane.ring, handler)

	errc := make(chan error, 2)
	srv := resilience.HardenServer(&http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second})
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() { errc <- serve.ServeListener(sctx, srv, ln, 10*time.Second) }()

	if debugLn != nil {
		fmt.Fprintf(stdout, "pslserver: debug endpoints (pprof, metrics) on http://%s/debug/pprof/\n", debugLn.Addr())
		dsrv := resilience.HardenServer(&http.Server{Handler: debugHandler(reg), ReadHeaderTimeout: 10 * time.Second})
		go func() { errc <- serve.ServeListener(sctx, dsrv, debugLn, 10*time.Second) }()
	}

	// First exit wins: a debug-listener failure tears down the main
	// server and vice versa, so the process never half-runs.
	err = <-errc
	cancel()
	if debugLn != nil {
		if err2 := <-errc; err == nil {
			err = err2
		}
	}
	return err
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		log.Fatalf("pslserver: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
