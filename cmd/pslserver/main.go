// Command pslserver publishes the simulated public-suffix-list history
// over HTTP, standing in for publicsuffix.org in the examples and in
// update-strategy experiments, and mounts the production query API of
// internal/serve next to the raw-list endpoints.
//
//	GET /list/public_suffix_list.dat   the configured current version
//	GET /v/<seq>                       a specific historical version
//	GET /v1/lookup?host=H[&version=N]  eTLD / eTLD+1 JSON answer
//	GET /v1/version                    current list version metadata
//	GET /healthz                       liveness, cache and admission stats
//
// Flags:
//
//	-addr HOST:PORT   listen address (default 127.0.0.1:8353)
//	-age DAYS         publish the version in effect DAYS before
//	                  2022-12-08 (default 0 = newest)
//	-failrate F       fail this fraction of raw-list requests with 503,
//	                  to exercise client fallback paths
//	-seed N           history generator seed
//	-max-in-flight N  admission bound for /v1/lookup (503 above it)
//	-matcher NAME     matcher implementation for lookups:
//	                  packed (default), map, trie, sorted or linear
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fetch"
	"repro/internal/history"
	"repro/internal/psl"
	"repro/internal/serve"
)

// matcherConstructors maps -matcher flag values to constructors. A nil
// constructor selects serve's default (the packed compiled matcher).
var matcherConstructors = map[string]func(*psl.List) psl.Matcher{
	"packed": nil,
	"map":    func(l *psl.List) psl.Matcher { return psl.NewMapMatcher(l) },
	"trie":   func(l *psl.List) psl.Matcher { return psl.NewTrieMatcher(l) },
	"sorted": func(l *psl.List) psl.Matcher { return psl.NewSortedMatcher(l) },
	"linear": func(l *psl.List) psl.Matcher { return psl.NewLinearMatcher(l) },
}

// newHandler assembles the combined handler: the query API owns its
// three routes, the raw-list server owns everything else. The returned
// service and list server are exposed for tests and for runtime
// reconfiguration.
func newHandler(h *history.History, seq int, failRate float64, maxInFlight int, newMatcher func(*psl.List) psl.Matcher) (http.Handler, *serve.Service, *fetch.Server) {
	fs := fetch.NewServer(h)
	fs.SetCurrent(seq)
	fs.SetFailureRate(failRate)

	svc := serve.NewFromHistory(h, seq, serve.Options{MaxInFlight: maxInFlight, NewMatcher: newMatcher})

	mux := http.NewServeMux()
	mux.Handle(serve.LookupPath, svc)
	mux.Handle(serve.VersionPath, svc)
	mux.Handle(serve.HealthPath, svc)
	mux.Handle("/", fs)
	return mux, svc, fs
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8353", "listen address")
		age         = flag.Int("age", 0, "publish the version this many days before 2022-12-08")
		failRate    = flag.Float64("failrate", 0, "fraction of raw-list requests to fail with 503")
		seed        = flag.Int64("seed", history.DefaultSeed, "history generator seed")
		maxInFlight = flag.Int("max-in-flight", serve.DefaultMaxInFlight, "admission bound for /v1/lookup")
		matcher     = flag.String("matcher", "packed", "matcher implementation: packed, map, trie, sorted or linear")
	)
	flag.Parse()

	newMatcher, ok := matcherConstructors[*matcher]
	if !ok {
		log.Fatalf("unknown -matcher %q (want packed, map, trie, sorted or linear)", *matcher)
	}

	h := history.Generate(history.Config{Seed: *seed})
	seq := h.IndexForAge(*age)
	handler, _, _ := newHandler(h, seq, *failRate, *maxInFlight, newMatcher)

	meta := h.Meta(seq)
	fmt.Printf("pslserver: serving v%04d (%s, %d rules) on http://%s%s (failrate %.2f), query API at %s\n",
		meta.Seq, meta.Date.Format("2006-01-02"), meta.Rules, *addr, fetch.ListPath, *failRate, serve.LookupPath)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve.ListenAndServe(ctx, srv, 10*time.Second); err != nil {
		log.Fatal(err)
	}
}
