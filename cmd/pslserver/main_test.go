package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/fetch"
	"repro/internal/history"
	"repro/internal/psl"
	"repro/internal/serve"
)

// testHistory is a down-scaled history: the endpoints behave the same,
// the test suite stays fast.
var testHistory = history.Generate(history.Config{Seed: history.DefaultSeed, Versions: 50})

// bootServer starts the combined handler on an ephemeral port and
// returns its base URL plus the handles the smoke tests poke.
func bootServer(t *testing.T, failRate float64) (string, *serve.Service, *fetch.Server) {
	t.Helper()
	seq := testHistory.Len() - 1
	handler, svc, fs := newHandler(testHistory, seq, failRate, serve.DefaultMaxInFlight, nil)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		go func() { done <- srv.Serve(ln) }()
		<-ctx.Done()
		sctx, c := context.WithTimeout(context.Background(), 5*time.Second)
		defer c()
		srv.Shutdown(sctx)
	}()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != http.ErrServerClosed {
			t.Errorf("server exited: %v", err)
		}
	})
	return "http://" + ln.Addr().String(), svc, fs
}

// TestSmokeEndToEnd boots the server and walks every mounted route.
func TestSmokeEndToEnd(t *testing.T) {
	base, _, _ := bootServer(t, 0)
	client := &http.Client{Timeout: 10 * time.Second}

	// Raw current list: parseable and the version the server announces.
	resp, err := client.Get(base + fetch.ListPath)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s, %v", fetch.ListPath, resp.Status, err)
	}
	l, err := psl.ParseString(string(body))
	if err != nil {
		t.Fatalf("current list does not parse: %v", err)
	}
	if l.Len() != testHistory.Meta(testHistory.Len()-1).Rules {
		t.Errorf("current list has %d rules, want %d", l.Len(), testHistory.Meta(testHistory.Len()-1).Rules)
	}

	// Raw historical version.
	resp, err = client.Get(base + "/v/3")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v/3: %s", resp.Status)
	}
	if l, err := psl.ParseString(string(body)); err != nil || l.Len() != testHistory.Meta(3).Rules {
		t.Errorf("/v/3 returned %d rules (err %v), want %d", l.Len(), err, testHistory.Meta(3).Rules)
	}

	// Query API: lookup, version, healthz.
	resp, err = client.Get(base + serve.LookupPath + "?host=www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	var a serve.Answer
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || a.Site != "example.com" || a.Seq != testHistory.Len()-1 {
		t.Errorf("lookup answer %+v (status %s)", a, resp.Status)
	}

	resp, err = client.Get(base + serve.VersionPath)
	if err != nil {
		t.Fatal(err)
	}
	var vb map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if int(vb["seq"].(float64)) != testHistory.Len()-1 {
		t.Errorf("version body %v", vb)
	}

	resp, err = client.Get(base + serve.HealthPath)
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(hb), `"status":"ok"`) {
		t.Errorf("healthz: %s %s", resp.Status, hb)
	}
	if !strings.Contains(string(hb), `"cache_hits"`) || !strings.Contains(string(hb), `"cache_misses"`) {
		t.Errorf("healthz missing cache counters: %s", hb)
	}

	// Unknown path 404s through the raw-list server.
	resp, err = client.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope: %s", resp.Status)
	}
}

// TestFailrate503Path checks -failrate affects the raw-list endpoints
// (clients must fall back) while the query API stays up.
func TestFailrate503Path(t *testing.T) {
	base, _, fs := bootServer(t, 1.0)
	client := &http.Client{Timeout: 10 * time.Second}

	resp, err := client.Get(base + fetch.ListPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failrate 1.0: raw list status %s, want 503", resp.Status)
	}

	// The lookup API is mounted before the raw server, so it keeps
	// answering even while list downloads fail.
	resp, err = client.Get(base + serve.LookupPath + "?host=a.example.com")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("lookup during failrate 1.0: %s", resp.Status)
	}

	// Healing the failure rate restores the raw path.
	fs.SetFailureRate(0)
	resp, err = client.Get(base + fetch.ListPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("after SetFailureRate(0): %s", resp.Status)
	}
	if reqs, fails := fs.Stats(); reqs < 2 || fails < 1 {
		t.Errorf("stats = %d requests %d failures", reqs, fails)
	}
}

// TestVersionedLookupAgainstRawList cross-checks the two halves of the
// server: a versioned /v1/lookup answer must equal the answer computed
// from the raw /v/<seq> download.
func TestVersionedLookupAgainstRawList(t *testing.T) {
	base, _, _ := bootServer(t, 0)
	client := &http.Client{Timeout: 10 * time.Second}
	const seq = 7
	const host = "www.example.co.uk"

	resp, err := client.Get(base + "/v/7")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	l, err := psl.ParseString(string(body))
	if err != nil {
		t.Fatal(err)
	}
	wantSuffix, _, err := l.PublicSuffix(host)
	if err != nil {
		t.Fatal(err)
	}

	resp, err = client.Get(base + serve.LookupPath + "?host=" + host + "&version=7")
	if err != nil {
		t.Fatal(err)
	}
	var a serve.Answer
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if a.Seq != seq || a.ETLD != wantSuffix {
		t.Errorf("versioned lookup %+v, raw-list oracle suffix %q", a, wantSuffix)
	}
}
