package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/failpoint"
	"repro/internal/fetch"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/psl"
	"repro/internal/serve"
	"repro/internal/submit"
)

// testHistory is a down-scaled history: the endpoints behave the same,
// the test suite stays fast.
var testHistory = history.Generate(history.Config{Seed: history.DefaultSeed, Versions: 50})

// bootServer starts the combined handler on an ephemeral port and
// returns its base URL plus the handles the smoke tests poke.
func bootServer(t *testing.T, failRate float64) (string, *serve.Service, *fetch.Server) {
	t.Helper()
	seq := testHistory.Len() - 1
	cfg, err := parseFlags([]string{"-failrate", fmt.Sprint(failRate)})
	if err != nil {
		t.Fatal(err)
	}
	handler, svc, fs, _, _ := newHandler(testHistory, seq, cfg, newObsPlane("origin"))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		go func() { done <- srv.Serve(ln) }()
		<-ctx.Done()
		sctx, c := context.WithTimeout(context.Background(), 5*time.Second)
		defer c()
		srv.Shutdown(sctx)
	}()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != http.ErrServerClosed {
			t.Errorf("server exited: %v", err)
		}
	})
	return "http://" + ln.Addr().String(), svc, fs
}

// TestSmokeEndToEnd boots the server and walks every mounted route.
func TestSmokeEndToEnd(t *testing.T) {
	base, _, _ := bootServer(t, 0)
	client := &http.Client{Timeout: 10 * time.Second}

	// Raw current list: parseable and the version the server announces.
	resp, err := client.Get(base + fetch.ListPath)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s, %v", fetch.ListPath, resp.Status, err)
	}
	l, err := psl.ParseString(string(body))
	if err != nil {
		t.Fatalf("current list does not parse: %v", err)
	}
	if l.Len() != testHistory.Meta(testHistory.Len()-1).Rules {
		t.Errorf("current list has %d rules, want %d", l.Len(), testHistory.Meta(testHistory.Len()-1).Rules)
	}

	// Raw historical version.
	resp, err = client.Get(base + "/v/3")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v/3: %s", resp.Status)
	}
	if l, err := psl.ParseString(string(body)); err != nil || l.Len() != testHistory.Meta(3).Rules {
		t.Errorf("/v/3 returned %d rules (err %v), want %d", l.Len(), err, testHistory.Meta(3).Rules)
	}

	// Query API: lookup, version, healthz.
	resp, err = client.Get(base + serve.LookupPath + "?host=www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	var a serve.Answer
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || a.Site != "example.com" || a.Seq != testHistory.Len()-1 {
		t.Errorf("lookup answer %+v (status %s)", a, resp.Status)
	}

	resp, err = client.Get(base + serve.VersionPath)
	if err != nil {
		t.Fatal(err)
	}
	var vb map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if int(vb["seq"].(float64)) != testHistory.Len()-1 {
		t.Errorf("version body %v", vb)
	}

	resp, err = client.Get(base + serve.HealthPath)
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(hb), `"status":"ok"`) {
		t.Errorf("healthz: %s %s", resp.Status, hb)
	}
	if !strings.Contains(string(hb), `"cache_hits"`) || !strings.Contains(string(hb), `"cache_misses"`) {
		t.Errorf("healthz missing cache counters: %s", hb)
	}

	// Unknown path 404s through the raw-list server.
	resp, err = client.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope: %s", resp.Status)
	}
}

// TestFailrate503Path checks -failrate affects the raw-list endpoints
// (clients must fall back) while the query API stays up.
func TestFailrate503Path(t *testing.T) {
	base, _, fs := bootServer(t, 1.0)
	client := &http.Client{Timeout: 10 * time.Second}

	resp, err := client.Get(base + fetch.ListPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failrate 1.0: raw list status %s, want 503", resp.Status)
	}

	// The lookup API is mounted before the raw server, so it keeps
	// answering even while list downloads fail.
	resp, err = client.Get(base + serve.LookupPath + "?host=a.example.com")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("lookup during failrate 1.0: %s", resp.Status)
	}

	// Healing the failure rate restores the raw path.
	fs.SetFailureRate(0)
	resp, err = client.Get(base + fetch.ListPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("after SetFailureRate(0): %s", resp.Status)
	}
	if reqs, fails := fs.Stats(); reqs < 2 || fails < 1 {
		t.Errorf("stats = %d requests %d failures", reqs, fails)
	}
}

// TestVersionedLookupAgainstRawList cross-checks the two halves of the
// server: a versioned /v1/lookup answer must equal the answer computed
// from the raw /v/<seq> download.
func TestVersionedLookupAgainstRawList(t *testing.T) {
	base, _, _ := bootServer(t, 0)
	client := &http.Client{Timeout: 10 * time.Second}
	const seq = 7
	const host = "www.example.co.uk"

	resp, err := client.Get(base + "/v/7")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	l, err := psl.ParseString(string(body))
	if err != nil {
		t.Fatal(err)
	}
	wantSuffix, _, err := l.PublicSuffix(host)
	if err != nil {
		t.Fatal(err)
	}

	resp, err = client.Get(base + serve.LookupPath + "?host=" + host + "&version=7")
	if err != nil {
		t.Fatal(err)
	}
	var a serve.Answer
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if a.Seq != seq || a.ETLD != wantSuffix {
		t.Errorf("versioned lookup %+v, raw-list oracle suffix %q", a, wantSuffix)
	}
}

// TestParseFlagsErrors pins the contract that every invalid invocation
// fails in parseFlags — before any listener binds or history generates.
func TestParseFlagsErrors(t *testing.T) {
	bad := [][]string{
		{"-matcher", "quantum"},
		{"-failrate", "1.5"},
		{"-failrate", "-0.1"},
		{"-age", "-3"},
		{"-max-in-flight", "0"},
		{"-addr", ""},
		{"-no-such-flag"},
		{"stray-positional"},
		{"-state-dir", "/tmp/x"},                           // requires -follow
		{"-max-lag", "5"},                                  // requires -follow
		{"-follow", "http://x", "-max-lag", "-1"},          // negative
		{"-max-snapshot-age", "-1s"},                       // negative
		{"-request-timeout", "-1s"},                        // negative
		{"-relay"},                                         // requires -follow
		{"-retain", "32"},                                  // requires -relay
		{"-follow", "http://x", "-retain", "32"},           // requires -relay
		{"-follow", "http://x", "-relay", "-retain", "-1"}, // negative
		{"-follow", "http://x", "-submit"},                 // origin mode only
		{"-submit-state-dir", "/tmp/x"},                    // requires -submit
		{"-submit-scale", "0.1"},                           // requires -submit
		{"-submit-max-flip", "0.5"},                        // requires -submit
		{"-submit", "-submit-scale", "-1"},                 // negative
		{"-submit", "-submit-max-flip", "1.5"},             // out of range
		{"-failpoints", "dist.state.rename"},               // no action
		{"-failpoints", "dist.state.rename=explode(1)"},    // unknown kind
		{"-failpoints", "dist.state.rename=err(2)"},        // probability out of range
		{"-failpoints", "x=err(1,errno=EWHAT)"},            // unknown errno
	}
	for _, args := range bad {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%q) accepted invalid flags", args)
		}
	}

	cfg, err := parseFlags([]string{"-matcher", "trie", "-failrate", "0.25", "-age", "30", "-debug-addr", "127.0.0.1:0",
		"-failpoints", "dist.state.rename=err(1);submit.persist.sync=crash(0.2,seed=7)"})
	if err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if cfg.matcher != "trie" || cfg.newMatcher == nil || cfg.failRate != 0.25 || cfg.age != 30 || cfg.debugAddr == "" {
		t.Errorf("parsed config %+v", cfg)
	}
	if cfg.failpoints != "dist.state.rename=err(1);submit.persist.sync=crash(0.2,seed=7)" {
		t.Errorf("failpoints spec not kept: %q", cfg.failpoints)
	}
}

// requiredFamilies is the minimum metric surface the acceptance bar
// demands on /metrics: families spanning serve, history-compile, fetch
// and experiments, plus process-level gauges.
var requiredFamilies = []string{
	"psl_serve_lookups_total",
	"psl_serve_lookup_duration_seconds",
	"psl_serve_swaps_total",
	"psl_serve_snapshot_age_seconds",
	"psl_serve_snapshot_rules",
	"psl_serve_cache_entries",
	"psl_serve_cache_bytes",
	"psl_serve_inflight_requests",
	"psl_serve_admitted_total",
	"psl_serve_rejected_total",
	"psl_compile_total",
	"psl_compile_duration_seconds",
	"psl_compile_cache_entries",
	"psl_fetch_requests_total",
	"psl_fetch_failures_injected_total",
	"psl_fetch_renders_total",
	"psl_fetch_render_cache_hits_total",
	"psl_fetch_not_modified_total",
	"psl_sweep_runs_total",
	"psl_sweep_versions_total",
	"psl_sweep_version_duration_seconds",
	"psl_sweep_active_workers",
	"psl_sweep_worker_busy_seconds_total",
	"psl_sweep_utilization_ratio",
	"psl_process_uptime_seconds",
	"psl_process_goroutines",
	"psl_http_panics_total",
	"psl_resilience_deadline_exceeded_total",
	"psl_failpoint_triggers_total",
}

// TestMetricsExposition scrapes the mounted /metrics endpoint after a
// little traffic and checks it is a valid Prometheus text document
// exposing every required family.
func TestMetricsExposition(t *testing.T) {
	base, _, _ := bootServer(t, 0)
	client := &http.Client{Timeout: 10 * time.Second}

	for _, path := range []string{
		serve.LookupPath + "?host=www.example.com",
		serve.LookupPath + "?host=www.example.com",
		serve.LookupPath + "?host=a.example.co.uk&version=3",
		fetch.ListPath,
	} {
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := client.Get(base + serve.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	families, err := obs.ValidateExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	have := make(map[string]bool, len(families))
	for _, f := range families {
		have[f] = true
	}
	for _, want := range requiredFamilies {
		if !have[want] {
			t.Errorf("/metrics missing family %s", want)
		}
	}
	if len(families) < 12 {
		t.Errorf("/metrics exposes %d families, acceptance floor is 12", len(families))
	}
	if !bytes.Contains(body, []byte(`psl_serve_lookups_total{matcher="packed",result="hit"} 1`)) {
		t.Errorf("hit counter did not move:\n%s", body)
	}
}

// syncBuffer lets the run() goroutine write stdout while the test polls
// it without racing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunServesBothListeners boots run() end to end on ephemeral ports
// with the debug listener enabled, scrapes both servers, and checks a
// clean shutdown on context cancellation.
func TestRunServesBothListeners(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0", "-quiet"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, &out) }()

	// The announce lines carry the bound addresses.
	extract := func(s, prefix string) string {
		i := strings.Index(s, prefix)
		if i < 0 {
			return ""
		}
		rest := s[i+len(prefix):]
		if j := strings.IndexAny(rest, "/ \n"); j >= 0 {
			rest = rest[:j]
		}
		return rest
	}
	var base, debug string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" || debug == "" {
		if time.Now().After(deadline) {
			t.Fatalf("run did not announce listeners; output so far:\n%s", out.String())
		}
		s := out.String()
		base = extract(s, "serving ")
		if base != "" {
			base = extract(s[strings.Index(s, "on http://"):], "on http://")
		}
		debug = extract(s, "debug endpoints (pprof, metrics) on http://")
		time.Sleep(20 * time.Millisecond)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	for _, url := range []string{
		"http://" + base + serve.HealthPath,
		"http://" + base + serve.MetricsPath,
		"http://" + debug + serve.MetricsPath,
		"http://" + debug + "/debug/pprof/",
	} {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s", url, resp.Status)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after cancel")
	}
}

// TestFailpointsFlagArmsAndDisarms: -failpoints arms its sites for
// exactly the lifetime of run() — in-process injection fires while the
// server is up, /metrics exports the per-site trigger family, and the
// sites are disarmed again once run returns.
func TestFailpointsFlagArmsAndDisarms(t *testing.T) {
	defer failpoint.DisarmAll()
	const site = "test.pslserver.probe"
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-quiet",
		"-failpoints", site + "=err(1,errno=EIO)"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, &out) }()

	base := waitForAnnounce(t, &out, "on http://")
	if i := strings.Index(base, "/"); i >= 0 {
		base = base[:i]
	}
	if !strings.Contains(out.String(), "failpoints armed: "+site) {
		t.Errorf("no arming announce; output:\n%s", out.String())
	}
	if err := failpoint.New(site).Inject(); err == nil {
		t.Error("armed site did not fire while run() was live")
	}

	resp, err := (&http.Client{Timeout: 10 * time.Second}).Get("http://" + base + serve.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte(`psl_failpoint_triggers_total{name="`+site+`"}`)) {
		t.Error("/metrics missing the armed site's trigger counter")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after cancel")
	}
	if err := failpoint.New(site).Inject(); err != nil {
		t.Errorf("site still armed after run returned: %v", err)
	}
}

// waitForAnnounce polls the run() stdout buffer until the announce line
// appears and returns the bound address it carries.
func waitForAnnounce(t *testing.T, out *syncBuffer, marker string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		s := out.String()
		if i := strings.Index(s, marker); i >= 0 {
			rest := s[i+len(marker):]
			if j := strings.IndexAny(rest, ", \n"); j >= 0 {
				rest = rest[:j]
			}
			return rest
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %q announce; output:\n%s", marker, out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFollowerMode boots an origin pslserver and a follower tracking it
// end to end through run(): the follower must bootstrap over /dist/,
// report source=follower with lag_seqs 0 once caught up, answer
// lookups for the origin's head version, and shut down cleanly.
func TestFollowerMode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ocfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-versions", "40", "-quiet"})
	if err != nil {
		t.Fatal(err)
	}
	var oout syncBuffer
	odone := make(chan error, 1)
	go func() { odone <- run(ctx, ocfg, &oout) }()
	obase := waitForAnnounce(t, &oout, " on http://")
	obase = strings.TrimSuffix(obase, fetch.ListPath)

	fcfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-quiet",
		"-follow", "http://" + obase,
		"-follow-from", "1",
		"-follow-poll", "20ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	var fout syncBuffer
	fdone := make(chan error, 1)
	go func() { fdone <- run(ctx, fcfg, &fout) }()
	fbase := waitForAnnounce(t, &fout, " on http://")

	if !strings.Contains(fout.String(), "following http://"+obase+" from v0001") {
		t.Errorf("follower did not announce bootstrap from v0001:\n%s", fout.String())
	}

	// The follower catches up to the origin head and says so.
	client := &http.Client{Timeout: 5 * time.Second}
	var health string
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get("http://" + fbase + serve.HealthPath)
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			health = string(b)
			if strings.Contains(health, `"lag_seqs":0`) {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up; last healthz: %s", health)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(health, `"source":"follower"`) || !strings.Contains(health, `"seq":39`) {
		t.Errorf("healthz: %s", health)
	}

	// A lookup answers with the origin's head version.
	resp, err := client.Get("http://" + fbase + serve.LookupPath + "?host=www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	var a serve.Answer
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if a.Seq != 39 || a.Site != "example.com" {
		t.Errorf("follower lookup answer %+v", a)
	}

	// Follower metrics expose the replica families.
	resp, err = client.Get("http://" + fbase + serve.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, fam := range []string{"psl_dist_replica_lag_seqs", "psl_dist_replica_patches_applied_total", "psl_serve_lookups_total"} {
		if !strings.Contains(string(mb), fam) {
			t.Errorf("follower /metrics missing %s", fam)
		}
	}
	if _, err := obs.ValidateExposition(bytes.NewReader(mb)); err != nil {
		t.Errorf("follower exposition invalid: %v", err)
	}

	cancel()
	for name, done := range map[string]chan error{"origin": odone, "follower": fdone} {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s run returned %v", name, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("%s did not exit after cancel", name)
		}
	}
}

// TestHealthzDegradesOnSnapshotAge boots the combined handler with a
// tiny -max-snapshot-age and checks /healthz flips to 503 with the
// violated limit in the body while lookups keep being served — health
// is a readiness signal, not a kill switch.
func TestHealthzDegradesOnSnapshotAge(t *testing.T) {
	cfg, err := parseFlags([]string{"-max-snapshot-age", "1ms"})
	if err != nil {
		t.Fatal(err)
	}
	handler, _, _, _, _ := newHandler(testHistory, testHistory.Len()-1, cfg, newObsPlane("origin"))
	ts := httptest.NewServer(handler)
	defer ts.Close()

	time.Sleep(10 * time.Millisecond) // let the snapshot age past the limit
	resp, err := http.Get(ts.URL + serve.HealthPath)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %s, want 503: %s", resp.Status, body)
	}
	if !strings.Contains(string(body), `"status":"degraded"`) || !strings.Contains(string(body), "snapshot age") {
		t.Errorf("healthz body does not explain the degradation: %s", body)
	}

	resp, err = http.Get(ts.URL + serve.LookupPath + "?host=www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("lookup while degraded: %s, want 200", resp.Status)
	}
}

// TestFollowerStateRestore runs a follower with -state-dir, kills it
// after it catches up, and restarts it against the same dir: the second
// run must announce a restored snapshot (no bootstrap) and serve the
// persisted version immediately.
func TestFollowerStateRestore(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ocfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-versions", "20", "-quiet"})
	if err != nil {
		t.Fatal(err)
	}
	var oout syncBuffer
	odone := make(chan error, 1)
	go func() { odone <- run(ctx, ocfg, &oout) }()
	obase := waitForAnnounce(t, &oout, " on http://")
	obase = strings.TrimSuffix(obase, fetch.ListPath)

	stateDir := t.TempDir()
	followerArgs := []string{
		"-addr", "127.0.0.1:0", "-quiet",
		"-follow", "http://" + obase,
		"-follow-poll", "10ms",
		"-state-dir", stateDir,
		"-max-lag", "5",
	}
	fcfg, err := parseFlags(followerArgs)
	if err != nil {
		t.Fatal(err)
	}
	f1ctx, f1cancel := context.WithCancel(ctx)
	var f1out syncBuffer
	f1done := make(chan error, 1)
	go func() { f1done <- run(f1ctx, fcfg, &f1out) }()
	f1base := waitForAnnounce(t, &f1out, " on http://")

	// Wait until the follower is caught up (healthz 200 under -max-lag).
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get("http://" + f1base + serve.HealthPath)
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && strings.Contains(string(b), `"seq":19`) {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up; output:\n%s", f1out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	f1cancel()
	if err := <-f1done; err != nil {
		t.Fatalf("first follower run returned %v", err)
	}

	// Restart against the same state dir: restored, not bootstrapped.
	f2ctx, f2cancel := context.WithCancel(ctx)
	defer f2cancel()
	var f2out syncBuffer
	f2done := make(chan error, 1)
	go func() { f2done <- run(f2ctx, fcfg, &f2out) }()
	f2base := waitForAnnounce(t, &f2out, " on http://")

	if !strings.Contains(f2out.String(), "restored v0019 from "+stateDir) {
		t.Errorf("second follower did not announce a state restore:\n%s", f2out.String())
	}
	resp, err := client.Get("http://" + f2base + serve.LookupPath + "?host=www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	var a serve.Answer
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if a.Seq != 19 || a.Site != "example.com" {
		t.Errorf("restored follower lookup answer %+v, want seq 19", a)
	}

	f2cancel()
	if err := <-f2done; err != nil {
		t.Errorf("second follower run returned %v", err)
	}
	cancel()
	if err := <-odone; err != nil {
		t.Errorf("origin run returned %v", err)
	}
}

// TestGracefulShutdownNoGoroutineLeak pins the drain contract: run()
// with the debug listener and a live follower poll loop must, on
// cancellation, stop every goroutine it started — the HTTP servers,
// the pprof server and the replica poller.
func TestGracefulShutdownNoGoroutineLeak(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ocfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-versions", "10", "-quiet"})
	if err != nil {
		t.Fatal(err)
	}
	var oout syncBuffer
	odone := make(chan error, 1)
	go func() { odone <- run(ctx, ocfg, &oout) }()
	obase := waitForAnnounce(t, &oout, " on http://")
	obase = strings.TrimSuffix(obase, fetch.ListPath)

	// Confirm the origin's serve goroutines are all up (the announce
	// line prints before they start), then drop the probe's keep-alive
	// connection so the baseline counts a quiesced process.
	probeTr := &http.Transport{}
	probe := &http.Client{Transport: probeTr, Timeout: 5 * time.Second}
	resp, err := probe.Get("http://" + obase + serve.HealthPath)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	probeTr.CloseIdleConnections()
	time.Sleep(100 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	fctx, fcancel := context.WithCancel(ctx)
	defer fcancel()
	fcfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0", "-quiet",
		"-follow", "http://" + obase, "-follow-poll", "10ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	var fout syncBuffer
	fdone := make(chan error, 1)
	go func() { fdone <- run(fctx, fcfg, &fout) }()
	fbase := waitForAnnounce(t, &fout, "following ")
	_ = fbase
	waitForAnnounce(t, &fout, "debug endpoints (pprof, metrics) on http://")

	// Let the poll loop take a few laps so its goroutines are real.
	time.Sleep(50 * time.Millisecond)
	if runtime.NumGoroutine() <= baseline {
		t.Fatalf("follower added no goroutines; the leak check would be vacuous")
	}

	fcancel()
	select {
	case err := <-fdone:
		if err != nil {
			t.Errorf("follower run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("follower did not exit after cancel")
	}

	// Everything the follower started must be gone. Allow the runtime a
	// moment to sweep parked goroutines.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}

	cancel()
	if err := <-odone; err != nil {
		t.Errorf("origin run returned %v", err)
	}
}

// TestRelayModeChain wires origin → relay → edge entirely through
// run(): the relay re-serves /dist/ from its verified window, the edge
// bootstraps and catches up THROUGH the relay (never touching the
// origin), both tiers report the right source, and both /metrics
// endpoints pass promlint.
func TestRelayModeChain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ocfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-versions", "30", "-quiet"})
	if err != nil {
		t.Fatal(err)
	}
	var oout syncBuffer
	odone := make(chan error, 1)
	go func() { odone <- run(ctx, ocfg, &oout) }()
	obase := waitForAnnounce(t, &oout, " on http://")
	obase = strings.TrimSuffix(obase, fetch.ListPath)

	rcfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-quiet",
		"-follow", "http://" + obase,
		"-follow-poll", "20ms",
		"-relay", "-retain", "32",
	})
	if err != nil {
		t.Fatal(err)
	}
	var rout syncBuffer
	rdone := make(chan error, 1)
	go func() { rdone <- run(ctx, rcfg, &rout) }()
	rbase := waitForAnnounce(t, &rout, " on http://")
	if !strings.Contains(rout.String(), "relaying http://"+obase) {
		t.Errorf("relay did not announce relay mode:\n%s", rout.String())
	}

	ecfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-quiet",
		"-follow", "http://" + rbase,
		"-follow-poll", "20ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	var eout syncBuffer
	edone := make(chan error, 1)
	go func() { edone <- run(ctx, ecfg, &eout) }()
	ebase := waitForAnnounce(t, &eout, " on http://")

	client := &http.Client{Timeout: 5 * time.Second}
	caughtUp := func(base string) string {
		t.Helper()
		var health string
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := client.Get("http://" + base + serve.HealthPath)
			if err == nil {
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				health = string(b)
				if strings.Contains(health, `"lag_seqs":0`) && strings.Contains(health, `"seq":29`) {
					return health
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never caught up to v29; last healthz: %s", base, health)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	rhealth := caughtUp(rbase)
	if !strings.Contains(rhealth, `"source":"relay"`) {
		t.Errorf("relay healthz source: %s", rhealth)
	}
	ehealth := caughtUp(ebase)
	if !strings.Contains(ehealth, `"source":"follower"`) {
		t.Errorf("edge healthz source: %s", ehealth)
	}

	// The relay's /dist/manifest is a decodable descriptor one hop
	// deeper than the origin's.
	resp, err := client.Get("http://" + rbase + dist.ManifestPath)
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	m, err := dist.DecodeManifest(mb)
	if err != nil {
		t.Fatalf("relay manifest invalid: %v\n%s", err, mb)
	}
	if m.Seq != 29 || m.Depth != 1 {
		t.Errorf("relay manifest seq %d depth %d, want 29 / 1", m.Seq, m.Depth)
	}

	// An edge lookup answers with the origin's head version, end of
	// chain.
	resp, err = client.Get("http://" + ebase + serve.LookupPath + "?host=www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	var a serve.Answer
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if a.Seq != 29 || a.Site != "example.com" {
		t.Errorf("edge lookup answer %+v", a)
	}

	// Both tiers' /metrics validate; the relay's carries the relay
	// families and the edge's the replica families.
	scrape := func(base string) string {
		t.Helper()
		resp, err := client.Get("http://" + base + serve.MetricsPath)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if _, err := obs.ValidateExposition(bytes.NewReader(b)); err != nil {
			t.Errorf("%s exposition invalid: %v", base, err)
		}
		return string(b)
	}
	rm := scrape(rbase)
	for _, fam := range []string{
		"psl_dist_relay_requests_total",
		"psl_dist_relay_retained_snapshots",
		"psl_dist_relay_head_seq",
		"psl_dist_replica_lag_seqs",
	} {
		if !strings.Contains(rm, fam) {
			t.Errorf("relay /metrics missing %s", fam)
		}
	}
	em := scrape(ebase)
	if !strings.Contains(em, "psl_dist_replica_patches_applied_total") {
		t.Errorf("edge /metrics missing replica families")
	}

	cancel()
	for name, done := range map[string]chan error{"origin": odone, "relay": rdone, "edge": edone} {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s run returned %v", name, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("%s did not exit after cancel", name)
		}
	}
}

// TestSubmitWritePathWiring boots the combined origin handler with
// -submit and drives one authorized change through the HTTP surface:
// the TXT record is planted via /debug/dns, the submission publishes,
// and the read path — query API and raw-list tier — swaps to the new
// version in-process without a restart.
func TestSubmitWritePathWiring(t *testing.T) {
	// A fresh history: publishing appends to it, so the shared
	// testHistory must not be used here.
	h := history.Generate(history.Config{Versions: 30})
	seq := h.Len() - 1
	cfg, err := parseFlags([]string{"-submit"})
	if err != nil {
		t.Fatal(err)
	}
	handler, _, _, origin, _ := newHandler(h, seq, cfg, newObsPlane("origin"))
	ts := httptest.NewServer(handler)
	defer ts.Close()
	client := &http.Client{Timeout: 10 * time.Second}

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	req := submit.Request{
		Changes: []submit.Change{{Op: "add", Rule: "hosted.wired-cmd.test", Section: "private"}},
	}
	rec, _ := json.Marshal(map[string]string{
		"name": "_psl.hosted.wired-cmd.test", "type": "TXT", "data": submit.ComputeID(req),
	})
	if status, body := post("/debug/dns", string(rec)); status/100 != 2 {
		t.Fatalf("plant TXT: status %d: %s", status, body)
	}
	reqBody, _ := json.Marshal(req)
	status, body := post(submit.SubmitPath, string(reqBody))
	if status != http.StatusOK || !strings.Contains(body, `"state":"published"`) {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	if origin.Head() != seq+1 {
		t.Fatalf("origin head %d after publish, want %d", origin.Head(), seq+1)
	}

	// The query API swapped to the published version in-process.
	resp, err := client.Get(ts.URL + serve.LookupPath + "?host=www.hosted.wired-cmd.test")
	if err != nil {
		t.Fatal(err)
	}
	var a serve.Answer
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if a.Seq != seq+1 || a.ETLD != "hosted.wired-cmd.test" || a.Site != "www.hosted.wired-cmd.test" {
		t.Fatalf("lookup after publish: %+v, want seq %d under the new rule", a, seq+1)
	}

	// The raw-list tier serves the new version too.
	resp, err = client.Get(ts.URL + fetch.ListPath)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "hosted.wired-cmd.test") {
		t.Fatalf("raw list after publish does not carry the new rule")
	}

	// The write path's metric families are exposed alongside the rest.
	resp, err = client.Get(ts.URL + serve.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"psl_submit_received_total 1",
		"psl_submit_published_total 1",
		`psl_submit_verdicts_total{stage="publish",outcome="pass"} 1`,
		`psl_submit_submissions{state="published"} 1`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if _, err := obs.ValidateExposition(bytes.NewReader(mb)); err != nil {
		t.Errorf("exposition invalid with submit families: %v", err)
	}

	// The debug endpoint pslobs scrapes reflects the store.
	resp, err = client.Get(ts.URL + submit.DebugPath)
	if err != nil {
		t.Fatal(err)
	}
	var sum submit.DebugSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sum.Published != 1 || sum.Total != 1 {
		t.Fatalf("debug summary %+v", sum)
	}
}
