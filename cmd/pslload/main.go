// Command pslload drives a running pslserver's /v1/lookup endpoint with
// the shared loadgen harness and prints a machine-readable JSON summary
// — counts, throughput, and client-side latency percentiles (p50, p90,
// p99, max) measured with the same histogram type the server exports on
// /metrics, so client- and server-side views are directly comparable.
//
// The host pool is synthesised from the server's own current list:
// pslload downloads /list/public_suffix_list.dat, parses it, and
// derives a mix of bare suffixes and one- and two-label registrable
// names under them.
//
//	pslserver &
//	pslload -base http://127.0.0.1:8353 -clients 8 -requests 2000
//
// With -batch each client drives /v1/batch instead: every request is
// one binary-framed batch of -batch-size hosts drawn from the same
// Zipf mix, -requests counts batches per client, and the summary
// reports rows/sec next to batch latency percentiles — directly
// comparable against a single-lookup run's lookups_per_sec.
//
// Flags:
//
//	-base URL      base URL of the running server (required)
//	-clients N     concurrent clients (default 8)
//	-requests N    lookups (or batches, with -batch) per client
//	               (default 1000)
//	-hosts N       size of the synthesised host pool (default 512)
//	-seed N        host-mix seed; equal seeds replay identical mixes
//	-timeout D     per-request HTTP timeout (default 10s)
//	-batch         drive /v1/batch with binary-framed batches
//	-batch-size N  hosts per batch request (default 256)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fetch"
	"repro/internal/obs"
	"repro/internal/psl"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
)

// config is the validated flag set.
type config struct {
	base      string
	clients   int
	requests  int
	hosts     int
	seed      int64
	timeout   time.Duration
	batch     bool
	batchSize int
}

// parseFlags parses and validates the command line without touching the
// network.
func parseFlags(args []string) (config, error) {
	var cfg config
	fs := flag.NewFlagSet("pslload", flag.ContinueOnError)
	fs.StringVar(&cfg.base, "base", "", "base URL of the running server (e.g. http://127.0.0.1:8353)")
	fs.IntVar(&cfg.clients, "clients", 8, "concurrent clients")
	fs.IntVar(&cfg.requests, "requests", 1000, "lookups per client")
	fs.IntVar(&cfg.hosts, "hosts", 512, "synthesised host pool size")
	fs.Int64Var(&cfg.seed, "seed", 1, "host-mix seed")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-request HTTP timeout")
	fs.BoolVar(&cfg.batch, "batch", false, "drive /v1/batch with binary-framed batches instead of single lookups")
	fs.IntVar(&cfg.batchSize, "batch-size", 256, "hosts per batch request (with -batch)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if cfg.base == "" {
		return config{}, fmt.Errorf("-base is required")
	}
	if cfg.clients < 1 || cfg.requests < 1 || cfg.hosts < 1 {
		return config{}, fmt.Errorf("-clients, -requests and -hosts must be positive")
	}
	if cfg.batchSize < 1 {
		return config{}, fmt.Errorf("-batch-size must be positive")
	}
	return cfg, nil
}

// fetchHosts downloads and parses the server's current list and derives
// the query pool from its rules.
func fetchHosts(cfg config, client *http.Client) ([]string, error) {
	resp, err := client.Get(cfg.base + fetch.ListPath)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", fetch.ListPath, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	l, err := psl.ParseString(string(body))
	if err != nil {
		return nil, fmt.Errorf("server list does not parse: %w", err)
	}
	return loadgen.Hostnames(l, cfg.hosts, cfg.seed), nil
}

// batchSummary is the machine-readable digest of a -batch run: batch
// and row counts, throughput, and per-batch latency percentiles from
// the same histogram type the single-lookup summary uses.
type batchSummary struct {
	Batches        int64                  `json:"batches"`
	Rows           int64                  `json:"rows"`
	Errors         int64                  `json:"errors"`
	BatchSize      int                    `json:"batch_size"`
	ElapsedSeconds float64                `json:"elapsed_seconds"`
	RowsPerSec     float64                `json:"rows_per_sec"`
	BatchesPerSec  float64                `json:"batches_per_sec"`
	Latency        loadgen.LatencySummary `json:"latency"`
}

// runBatch drives /v1/batch: each client issues cfg.requests binary
// batches of cfg.batchSize hosts drawn Zipf-style from the pool, and
// every response envelope is decoded so row counts are verified, not
// assumed. As with single-lookup runs, a run in which every batch
// failed exits nonzero with the first error.
func runBatch(cfg config, hosts []string, client *http.Client, stdout io.Writer) error {
	var batches, rows, errs int64
	var firstErr atomic.Value
	lat := obs.NewHistogram(nil)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
			zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(hosts)-1))
			pick := make([]string, cfg.batchSize)
			var payload []byte
			for i := 0; i < cfg.requests; i++ {
				for j := range pick {
					pick[j] = hosts[zipf.Uint64()]
				}
				var err error
				payload, err = serve.AppendBatchRequest(payload[:0], pick)
				if err != nil {
					atomic.AddInt64(&errs, 1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				t0 := time.Now()
				n, err := postBatch(client, cfg.base, payload)
				lat.Observe(time.Since(t0))
				atomic.AddInt64(&batches, 1)
				if err != nil {
					atomic.AddInt64(&errs, 1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				atomic.AddInt64(&rows, int64(n))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if batches > 0 && errs == batches {
		return fmt.Errorf("all %d batches failed; first error: %v", batches, firstErr.Load())
	}
	s := batchSummary{
		Batches:        batches,
		Rows:           rows,
		Errors:         errs,
		BatchSize:      cfg.batchSize,
		ElapsedSeconds: elapsed.Seconds(),
		Latency: loadgen.LatencySummary{
			P50Seconds:  lat.Quantile(0.50).Seconds(),
			P90Seconds:  lat.Quantile(0.90).Seconds(),
			P99Seconds:  lat.Quantile(0.99).Seconds(),
			MaxSeconds:  lat.Max().Seconds(),
			MeanSeconds: lat.Mean().Seconds(),
		},
	}
	if elapsed > 0 {
		s.RowsPerSec = float64(rows) / elapsed.Seconds()
		s.BatchesPerSec = float64(batches) / elapsed.Seconds()
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = stdout.Write(append(data, '\n'))
	return err
}

// postBatch issues one binary batch request and returns the number of
// rows in the decoded response envelope.
func postBatch(client *http.Client, base string, payload []byte) (int, error) {
	resp, err := client.Post(base+serve.BatchPath, serve.BatchBinaryContentType, bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("POST %s: %s", serve.BatchPath, resp.Status)
	}
	rows, err := serve.DecodeBatchResponse(body)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// run executes one load run and writes the JSON summary to stdout. A
// run in which every single lookup failed exits nonzero with the first
// error instead: its latency summary would describe nothing but the
// failure path, and a scripted benchmark must not mistake a dead server
// for a fast one.
func run(cfg config, stdout io.Writer) error {
	client := &http.Client{Timeout: cfg.timeout}
	hosts, err := fetchHosts(cfg, client)
	if err != nil {
		return err
	}
	if cfg.batch {
		return runBatch(cfg, hosts, client, stdout)
	}
	res := loadgen.Run(loadgen.Config{
		Clients:           cfg.clients,
		RequestsPerClient: cfg.requests,
		Seed:              cfg.seed,
		Hosts:             hosts,
		Lookup:            loadgen.HTTPLookup(cfg.base, client),
	})
	if res.Lookups > 0 && res.Errors == res.Lookups {
		return fmt.Errorf("all %d lookups failed; first error: %v", res.Lookups, res.FirstError)
	}
	return res.WriteJSON(stdout)
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "pslload: %v\n", err)
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pslload: %v\n", err)
		os.Exit(1)
	}
}
