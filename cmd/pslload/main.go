// Command pslload drives a running pslserver's /v1/lookup endpoint with
// the shared loadgen harness and prints a machine-readable JSON summary
// — counts, throughput, and client-side latency percentiles (p50, p90,
// p99, max) measured with the same histogram type the server exports on
// /metrics, so client- and server-side views are directly comparable.
//
// The host pool is synthesised from the server's own current list:
// pslload downloads /list/public_suffix_list.dat, parses it, and
// derives a mix of bare suffixes and one- and two-label registrable
// names under them.
//
//	pslserver &
//	pslload -base http://127.0.0.1:8353 -clients 8 -requests 2000
//
// Flags:
//
//	-base URL     base URL of the running server (required)
//	-clients N    concurrent clients (default 8)
//	-requests N   lookups per client (default 1000)
//	-hosts N      size of the synthesised host pool (default 512)
//	-seed N       host-mix seed; equal seeds replay identical mixes
//	-timeout D    per-request HTTP timeout (default 10s)
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/fetch"
	"repro/internal/psl"
	"repro/internal/serve/loadgen"
)

// config is the validated flag set.
type config struct {
	base     string
	clients  int
	requests int
	hosts    int
	seed     int64
	timeout  time.Duration
}

// parseFlags parses and validates the command line without touching the
// network.
func parseFlags(args []string) (config, error) {
	var cfg config
	fs := flag.NewFlagSet("pslload", flag.ContinueOnError)
	fs.StringVar(&cfg.base, "base", "", "base URL of the running server (e.g. http://127.0.0.1:8353)")
	fs.IntVar(&cfg.clients, "clients", 8, "concurrent clients")
	fs.IntVar(&cfg.requests, "requests", 1000, "lookups per client")
	fs.IntVar(&cfg.hosts, "hosts", 512, "synthesised host pool size")
	fs.Int64Var(&cfg.seed, "seed", 1, "host-mix seed")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-request HTTP timeout")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if cfg.base == "" {
		return config{}, fmt.Errorf("-base is required")
	}
	if cfg.clients < 1 || cfg.requests < 1 || cfg.hosts < 1 {
		return config{}, fmt.Errorf("-clients, -requests and -hosts must be positive")
	}
	return cfg, nil
}

// fetchHosts downloads and parses the server's current list and derives
// the query pool from its rules.
func fetchHosts(cfg config, client *http.Client) ([]string, error) {
	resp, err := client.Get(cfg.base + fetch.ListPath)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", fetch.ListPath, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	l, err := psl.ParseString(string(body))
	if err != nil {
		return nil, fmt.Errorf("server list does not parse: %w", err)
	}
	return loadgen.Hostnames(l, cfg.hosts, cfg.seed), nil
}

// run executes one load run and writes the JSON summary to stdout. A
// run in which every single lookup failed exits nonzero with the first
// error instead: its latency summary would describe nothing but the
// failure path, and a scripted benchmark must not mistake a dead server
// for a fast one.
func run(cfg config, stdout io.Writer) error {
	client := &http.Client{Timeout: cfg.timeout}
	hosts, err := fetchHosts(cfg, client)
	if err != nil {
		return err
	}
	res := loadgen.Run(loadgen.Config{
		Clients:           cfg.clients,
		RequestsPerClient: cfg.requests,
		Seed:              cfg.seed,
		Hosts:             hosts,
		Lookup:            loadgen.HTTPLookup(cfg.base, client),
	})
	if res.Lookups > 0 && res.Errors == res.Lookups {
		return fmt.Errorf("all %d lookups failed; first error: %v", res.Lookups, res.FirstError)
	}
	return res.WriteJSON(stdout)
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "pslload: %v\n", err)
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pslload: %v\n", err)
		os.Exit(1)
	}
}
