package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fetch"
	"repro/internal/history"
	"repro/internal/serve"
)

func TestParseFlagsValidation(t *testing.T) {
	for _, args := range [][]string{
		{}, // -base missing
		{"-base", "http://x", "-clients", "0"},
		{"-base", "http://x", "-requests", "-1"},
		{"-base", "http://x", "stray"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%q) accepted invalid flags", args)
		}
	}
	cfg, err := parseFlags([]string{"-base", "http://127.0.0.1:1", "-clients", "2", "-requests", "5", "-hosts", "16"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.clients != 2 || cfg.requests != 5 || cfg.hosts != 16 {
		t.Errorf("parsed config %+v", cfg)
	}
}

// TestRunAgainstServer drives run() end to end against an in-process
// server and checks the stdout contract: one indented JSON document
// whose counts add up.
func TestRunAgainstServer(t *testing.T) {
	h := history.Generate(history.Config{Seed: history.DefaultSeed, Versions: 20})
	seq := h.Len() - 1
	fs := fetch.NewServer(h)
	fs.SetCurrent(seq)
	svc := serve.NewFromHistory(h, seq, serve.Options{})
	mux := http.NewServeMux()
	mux.Handle(serve.LookupPath, svc)
	mux.Handle("/", fs)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cfg, err := parseFlags([]string{"-base", ts.URL, "-clients", "2", "-requests", "40", "-hosts", "32"})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}

	var sum struct {
		Lookups int64 `json:"lookups"`
		Errors  int64 `json:"errors"`
		Latency struct {
			P50 float64 `json:"p50_seconds"`
			P99 float64 `json:"p99_seconds"`
			Max float64 `json:"max_seconds"`
		} `json:"latency"`
		LookupsPerSec float64 `json:"lookups_per_sec"`
	}
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out.String())
	}
	if sum.Lookups < 80 {
		t.Errorf("lookups = %d, want >= 80", sum.Lookups)
	}
	if sum.Errors != 0 {
		t.Errorf("errors = %d, want 0", sum.Errors)
	}
	if sum.Latency.P50 <= 0 || sum.Latency.P50 > sum.Latency.Max || sum.LookupsPerSec <= 0 {
		t.Errorf("implausible summary: %+v", sum)
	}
}

// TestRunFailsWhenAllLookupsFail pins the exit contract for a dead
// lookup endpoint: the raw list downloads fine (so the host pool
// builds), every /v1/lookup then 404s, and run() must return an error
// naming the first failure instead of printing a vacuous summary.
func TestRunFailsWhenAllLookupsFail(t *testing.T) {
	h := history.Generate(history.Config{Seed: history.DefaultSeed, Versions: 20})
	fs := fetch.NewServer(h)
	fs.SetCurrent(h.Len() - 1)
	// No lookup route mounted: the query API is "down".
	ts := httptest.NewServer(fs)
	defer ts.Close()

	cfg, err := parseFlags([]string{"-base", ts.URL, "-clients", "2", "-requests", "5", "-hosts", "16"})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run(cfg, &out)
	if err == nil {
		t.Fatalf("run succeeded against a server with no lookup endpoint; stdout:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "all ") || !strings.Contains(err.Error(), "first error") {
		t.Errorf("error %q does not summarise the failure", err)
	}
	if !strings.Contains(err.Error(), "404") {
		t.Errorf("error %q does not carry the first lookup failure detail", err)
	}
	if out.Len() != 0 {
		t.Errorf("failed run still wrote a summary:\n%s", out.String())
	}
}
