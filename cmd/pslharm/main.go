// Command pslharm regenerates every table and figure of the paper's
// evaluation from the simulated corpora.
//
// Usage:
//
//	pslharm [flags] <artefact>...
//
// Artefacts: fig2 fig3 fig4 fig5 fig6 fig7 tab1 tab2 tab3 all
//
// Flags:
//
//	-seed N       generator seed (default 0x5157, the reference seed)
//	-scale F      snapshot scale (default 1.0, the reference scale;
//	              Table 2 hostname counts are exact at every scale)
//
// The reference-configuration outputs are recorded in EXPERIMENTS.md
// next to the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/history"
	"repro/internal/report"
)

func main() {
	var (
		seed      = flag.Int64("seed", history.DefaultSeed, "generator seed")
		scale     = flag.Float64("scale", 1.0, "snapshot scale factor")
		svgDir    = flag.String("svg", "", "also write figure artefacts as SVG files to this directory")
		histCache = flag.String("history", "", "load the version history from a pslgen cache (.gob)")
		snapCache = flag.String("snapshot", "", "load the crawl snapshot from a pslgen cache (.gob)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pslharm [flags] <artefact>...\nartefacts: %s %s all\nflags:\n",
			strings.Join(experiments.IDs(), " "), strings.Join(experiments.ExtraIDs(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	ids := flag.Args()
	if len(ids) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("reproduction environment: seed=%#x scale=%g\n", *seed, *scale)
	env, err := experiments.NewWithCaches(*seed, *scale, *histCache, *snapCache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pslharm:", err)
		os.Exit(1)
	}
	fmt.Printf("history: %d versions (%d -> %d rules); corpus: %d repositories; snapshot: %d hosts, %d requests\n\n",
		env.H.Len(), env.H.Meta(0).Rules, env.H.Meta(env.H.Len()-1).Rules,
		len(env.Corpus), len(env.Snap.Hosts), env.Snap.Requests)

	if len(ids) == 1 && ids[0] == "all" {
		ids = append(append([]string{}, experiments.IDs()...), experiments.ExtraIDs()...)
	}
	for _, id := range ids {
		out, ok := env.Render(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "pslharm: unknown artefact %q\n", id)
			os.Exit(2)
		}
		fmt.Println(out)
		if *svgDir != "" {
			if err := writeSVG(env, id, *svgDir); err != nil {
				fmt.Fprintf(os.Stderr, "pslharm: svg for %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
}

// writeSVG renders a figure artefact's series as an SVG file; table
// artefacts are silently skipped.
func writeSVG(env *experiments.Env, id, dir string) error {
	points, title, ylabel, ok := env.Series(id)
	if !ok {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.SVGLine(f, points, report.SVGOptions{Title: title, YLabel: ylabel}); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", filepath.Join(dir, id+".svg"))
	return nil
}
