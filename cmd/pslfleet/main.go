// Command pslfleet runs the in-process replication fleet simulator of
// internal/fleet and emits its JSON report on stdout: an origin
// publishing snapshot deltas, an optional relay tier re-serving and
// compacting them, and up to thousands of edge replicas polling with
// skewed jitter while churn and chaos-proxy faults run at the
// configured tiers. Everything derives from -seed, so a run is
// replayable.
//
// With -compare it runs the configured topology AND its single-tier
// equivalent (same seed and edges, no relays) and reports both, plus
// the origin-egress ratio — the number the relay tier exists to shrink.
// With -check the exit status becomes a verdict: non-zero unless the
// fleet converged with zero unverified swaps (and, under -compare,
// strictly lower origin egress than the naive topology).
//
// Flags mirror fleet.Config:
//
//	-seed N              master seed (default 1)
//	-edges N             edge replicas (default 100)
//	-relays N            relay-tier width; 0 = single tier (default 0)
//	-retain N            relay snapshot window (default 128)
//	-versions N          history length (default 160)
//	-start-head N        initially published version (default 0 = auto)
//	-head-step N         versions published per advance (default 2)
//	-advance-every D     head publish cadence (default duration/10)
//	-duration D          churn-and-chaos phase length (default 2s)
//	-base-poll D         median edge poll interval (default 50ms)
//	-poll-skew F         lognormal sigma of per-edge intervals (default 0.5)
//	-churn F             fraction of edges killed mid-run (default 0)
//	-rejoin-delay D      victim replacement delay (default duration/8)
//	-chaos-rate F        fault-injection rate on -chaos-tiers (default 0)
//	-chaos-tiers LIST    comma-separated: origin,relay (default none)
//	-max-hop N           max patch span per hop (default 16)
//	-sample-every D      lag sampler cadence (default duration/10)
//	-converge-timeout D  post-run convergence window (default 30s)
//	-failpoints SPEC     err-mode storage-fault spec armed for the run
//	                     (e.g. 'dist.state.sync=err(0.4,errno=EIO)')
//	-edge-state          give every edge an in-memory state dir so the
//	                     dist.state.* sites fire under churn
//	-compare             also run the single-tier baseline
//	-check               exit non-zero unless the run passes
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/failpoint"
	"repro/internal/fleet"
)

// config is the validated flag set plus the run modes.
type config struct {
	fleet   fleet.Config
	compare bool
	check   bool
}

// parseFlags parses and validates the command line; every invalid
// invocation fails here, before any simulation starts.
func parseFlags(args []string) (config, error) {
	var cfg config
	var chaosTiers string
	fs := flag.NewFlagSet("pslfleet", flag.ContinueOnError)
	fs.Int64Var(&cfg.fleet.Seed, "seed", 1, "master seed for the whole run")
	fs.IntVar(&cfg.fleet.Edges, "edges", 100, "edge replica population")
	fs.IntVar(&cfg.fleet.Relays, "relays", 0, "relay-tier width (0 = single tier)")
	fs.IntVar(&cfg.fleet.Retain, "retain", 0, "relay snapshot window (0 = default)")
	fs.IntVar(&cfg.fleet.Versions, "versions", 0, "history length (0 = default)")
	fs.IntVar(&cfg.fleet.StartHead, "start-head", 0, "initially published version (0 = auto)")
	fs.IntVar(&cfg.fleet.HeadStep, "head-step", 0, "versions published per advance (0 = default)")
	fs.DurationVar(&cfg.fleet.AdvanceEvery, "advance-every", 0, "head publish cadence (0 = duration/10)")
	fs.DurationVar(&cfg.fleet.Duration, "duration", 0, "churn-and-chaos phase length (0 = default 2s)")
	fs.DurationVar(&cfg.fleet.BasePoll, "base-poll", 0, "median edge poll interval (0 = default 50ms)")
	fs.Float64Var(&cfg.fleet.PollSkew, "poll-skew", 0.5, "lognormal sigma of per-edge poll intervals")
	fs.Float64Var(&cfg.fleet.ChurnFraction, "churn", 0, "fraction of edges killed mid-run")
	fs.DurationVar(&cfg.fleet.RejoinDelay, "rejoin-delay", 0, "victim replacement delay (0 = duration/8)")
	fs.Float64Var(&cfg.fleet.ChaosRate, "chaos-rate", 0, "fault-injection rate on -chaos-tiers")
	fs.StringVar(&chaosTiers, "chaos-tiers", "", "comma-separated tiers to fault: origin,relay")
	fs.IntVar(&cfg.fleet.MaxHop, "max-hop", 0, "max patch span per hop (0 = default 16)")
	fs.DurationVar(&cfg.fleet.SampleEvery, "sample-every", 0, "lag sampler cadence (0 = duration/10)")
	fs.DurationVar(&cfg.fleet.ConvergeTimeout, "converge-timeout", 0, "post-run convergence window (0 = default 30s)")
	fs.StringVar(&cfg.fleet.Failpoints, "failpoints", "", "err-mode storage-fault spec armed for the run")
	fs.BoolVar(&cfg.fleet.EdgeState, "edge-state", false, "give every edge an in-memory state dir (fires dist.state.* sites)")
	fs.BoolVar(&cfg.compare, "compare", false, "also run the single-tier baseline with the same seed")
	fs.BoolVar(&cfg.check, "check", false, "exit non-zero unless the run passes its invariants")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if cfg.fleet.Edges < 1 {
		return config{}, fmt.Errorf("-edges %d must be at least 1", cfg.fleet.Edges)
	}
	if cfg.fleet.Relays < 0 {
		return config{}, fmt.Errorf("-relays %d is negative", cfg.fleet.Relays)
	}
	if cfg.fleet.Versions != 0 && cfg.fleet.Versions < 2 {
		return config{}, fmt.Errorf("-versions %d must be at least 2 (or 0 for the default)", cfg.fleet.Versions)
	}
	if cfg.fleet.ChurnFraction < 0 || cfg.fleet.ChurnFraction > 1 {
		return config{}, fmt.Errorf("-churn %v out of range [0, 1]", cfg.fleet.ChurnFraction)
	}
	if cfg.fleet.ChaosRate < 0 || cfg.fleet.ChaosRate > 1 {
		return config{}, fmt.Errorf("-chaos-rate %v out of range [0, 1]", cfg.fleet.ChaosRate)
	}
	if cfg.fleet.PollSkew < 0 {
		return config{}, fmt.Errorf("-poll-skew %v is negative", cfg.fleet.PollSkew)
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"-advance-every", cfg.fleet.AdvanceEvery},
		{"-duration", cfg.fleet.Duration},
		{"-base-poll", cfg.fleet.BasePoll},
		{"-rejoin-delay", cfg.fleet.RejoinDelay},
		{"-sample-every", cfg.fleet.SampleEvery},
		{"-converge-timeout", cfg.fleet.ConvergeTimeout},
	} {
		if d.v < 0 {
			return config{}, fmt.Errorf("%s %v is negative", d.name, d.v)
		}
	}
	if chaosTiers != "" {
		for _, tier := range strings.Split(chaosTiers, ",") {
			tier = strings.TrimSpace(tier)
			switch tier {
			case fleet.TierOrigin, fleet.TierRelay:
				cfg.fleet.ChaosTiers = append(cfg.fleet.ChaosTiers, tier)
			default:
				return config{}, fmt.Errorf("unknown -chaos-tiers entry %q (want origin or relay)", tier)
			}
		}
	}
	if cfg.fleet.ChaosRate > 0 && len(cfg.fleet.ChaosTiers) == 0 {
		return config{}, fmt.Errorf("-chaos-rate %v without -chaos-tiers faults nothing", cfg.fleet.ChaosRate)
	}
	if cfg.fleet.Failpoints != "" {
		crash, err := failpoint.SpecHasCrash(cfg.fleet.Failpoints)
		if err != nil {
			return config{}, fmt.Errorf("-failpoints: %v", err)
		}
		if crash {
			return config{}, fmt.Errorf("-failpoints %q uses crash mode, which would kill the simulator; use err mode", cfg.fleet.Failpoints)
		}
	}
	return cfg, nil
}

// comparison is the -compare output document.
type comparison struct {
	Tiered *fleet.Report `json:"tiered"`
	Naive  *fleet.Report `json:"naive"`
	// OriginEgressRatio is tiered origin bytes over naive origin bytes;
	// the relay tier earns its keep iff this is < 1.
	OriginEgressRatio float64 `json:"origin_egress_ratio"`
}

// run executes the configured simulation and writes the JSON report.
// The returned error carries the -check verdict.
func run(ctx context.Context, cfg config, stdout, stderr io.Writer) error {
	if cfg.compare {
		tiered, naive, err := fleet.RunComparison(ctx, cfg.fleet)
		if err != nil {
			return err
		}
		cmp := comparison{Tiered: tiered, Naive: naive}
		if naive.Egress.OriginBytes > 0 {
			cmp.OriginEgressRatio = float64(tiered.Egress.OriginBytes) / float64(naive.Egress.OriginBytes)
		}
		if err := writeJSON(stdout, cmp); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "pslfleet: tiered origin egress %d B vs naive %d B (ratio %.3f), convergence p99 %.2fs vs %.2fs\n",
			tiered.Egress.OriginBytes, naive.Egress.OriginBytes, cmp.OriginEgressRatio,
			tiered.Convergence.P99, naive.Convergence.P99)
		if cfg.check {
			if err := checkReport("tiered", tiered); err != nil {
				return err
			}
			if err := checkReport("naive", naive); err != nil {
				return err
			}
			if cfg.fleet.Relays > 0 && tiered.Egress.OriginBytes >= naive.Egress.OriginBytes {
				return fmt.Errorf("check failed: tiered origin egress %d B not below naive %d B",
					tiered.Egress.OriginBytes, naive.Egress.OriginBytes)
			}
		}
		return nil
	}

	rep, err := fleet.Run(ctx, cfg.fleet)
	if err != nil {
		return err
	}
	if err := writeJSON(stdout, rep); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "pslfleet: %d edges, %d relays: converged=%v, origin egress %d B, convergence p50 %.2fs p99 %.2fs\n",
		cfg.fleet.Edges, cfg.fleet.Relays, rep.Converged, rep.Egress.OriginBytes,
		rep.Convergence.P50, rep.Convergence.P99)
	if cfg.check {
		return checkReport("run", rep)
	}
	return nil
}

// checkReport enforces the invariants -check promises: full convergence
// and a clean fingerprint chain.
func checkReport(name string, rep *fleet.Report) error {
	if !rep.Converged {
		return fmt.Errorf("check failed: %s did not converge (%d/%d edges at head %d)",
			name, rep.Convergence.Converged, rep.Convergence.Live, rep.FinalHead)
	}
	if rep.UnverifiedSwaps != 0 {
		return fmt.Errorf("check failed: %s had %d unverified swaps", name, rep.UnverifiedSwaps)
	}
	return nil
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		log.Fatalf("pslfleet: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout, os.Stderr); err != nil {
		log.Fatalf("pslfleet: %v", err)
	}
}
