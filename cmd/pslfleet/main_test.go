package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/fleet"
)

// TestParseFlagsErrors pins the contract that invalid invocations fail
// before any simulation starts.
func TestParseFlagsErrors(t *testing.T) {
	bad := [][]string{
		{"-no-such-flag"},
		{"stray-positional"},
		{"-edges", "0"},
		{"-relays", "-1"},
		{"-versions", "1"},
		{"-churn", "1.5"},
		{"-churn", "-0.1"},
		{"-chaos-rate", "2"},
		{"-poll-skew", "-1"},
		{"-duration", "-1s"},
		{"-base-poll", "-5ms"},
		{"-chaos-tiers", "cloud"},                     // unknown tier
		{"-chaos-rate", "0.5"},                        // rate without tiers
		{"-chaos-rate", "0.5", "-chaos-tiers", ""},    // still no tiers
		{"-failpoints", "dist.state.sync=explode(1)"}, // bad action kind
		{"-failpoints", "dist.state.sync=crash(0.5)"}, // crash would kill the process
		{"-failpoints", "dist.state.sync=err(1.5)"},   // probability out of range
	}
	for _, args := range bad {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%q) accepted invalid flags", args)
		}
	}

	cfg, err := parseFlags([]string{
		"-seed", "9", "-edges", "40", "-relays", "2",
		"-chaos-rate", "0.2", "-chaos-tiers", "origin, relay",
		"-failpoints", "dist.state.sync=err(0.3,errno=EIO)", "-edge-state",
		"-compare", "-check",
	})
	if err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if cfg.fleet.Seed != 9 || cfg.fleet.Edges != 40 || cfg.fleet.Relays != 2 ||
		!cfg.compare || !cfg.check {
		t.Errorf("parsed config %+v", cfg)
	}
	if cfg.fleet.Failpoints != "dist.state.sync=err(0.3,errno=EIO)" || !cfg.fleet.EdgeState {
		t.Errorf("failpoint flags not parsed: %+v", cfg.fleet)
	}
	if len(cfg.fleet.ChaosTiers) != 2 || cfg.fleet.ChaosTiers[0] != fleet.TierOrigin || cfg.fleet.ChaosTiers[1] != fleet.TierRelay {
		t.Errorf("chaos tiers %v", cfg.fleet.ChaosTiers)
	}
}

// smallArgs is a fast two-tier run for the command-level tests.
func smallArgs(extra ...string) []string {
	return append([]string{
		"-seed", "11", "-edges", "8", "-relays", "1",
		"-versions", "40", "-duration", "400ms",
		"-base-poll", "25ms", "-advance-every", "80ms",
	}, extra...)
}

// TestRunEmitsReport runs a small fleet through run() and checks stdout
// is one decodable fleet.Report with the invariants intact.
func TestRunEmitsReport(t *testing.T) {
	cfg, err := parseFlags(smallArgs("-check"))
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if err := run(context.Background(), cfg, &out, &errOut); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errOut.String())
	}
	var rep fleet.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a report: %v\n%s", err, out.String())
	}
	if !rep.Converged || rep.UnverifiedSwaps != 0 || rep.Tiers != 2 {
		t.Errorf("report converged=%v unverified=%d tiers=%d", rep.Converged, rep.UnverifiedSwaps, rep.Tiers)
	}
	if !strings.Contains(errOut.String(), "converged=true") {
		t.Errorf("stderr summary: %s", errOut.String())
	}
}

// TestRunWithStorageFaults drives the command end to end with
// -edge-state and an err-mode failpoint spec: -check must still pass
// (storage faults never cost convergence or verification) and the
// report must show the faults firing.
func TestRunWithStorageFaults(t *testing.T) {
	cfg, err := parseFlags(smallArgs("-check", "-edge-state",
		"-failpoints", "dist.state.sync=err(0.5,errno=EIO)"))
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if err := run(context.Background(), cfg, &out, &errOut); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errOut.String())
	}
	var rep fleet.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a report: %v", err)
	}
	if !rep.Converged || rep.UnverifiedSwaps != 0 {
		t.Errorf("report converged=%v unverified=%d", rep.Converged, rep.UnverifiedSwaps)
	}
	if rep.FailpointTriggers["dist.state.sync"] == 0 {
		t.Errorf("armed site never fired: %v", rep.FailpointTriggers)
	}
	if rep.Edges.PersistErrors == 0 {
		t.Error("no persistence failure recorded under an armed sync fault")
	}
}

// TestRunCompare checks -compare emits both topologies plus the egress
// ratio, and that -check enforces the strict origin-egress win.
func TestRunCompare(t *testing.T) {
	cfg, err := parseFlags(smallArgs("-compare", "-check"))
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if err := run(context.Background(), cfg, &out, &errOut); err != nil {
		t.Fatalf("run -compare -check: %v\nstderr: %s", err, errOut.String())
	}
	var cmp comparison
	if err := json.Unmarshal(out.Bytes(), &cmp); err != nil {
		t.Fatalf("stdout is not a comparison: %v", err)
	}
	if cmp.Tiered == nil || cmp.Naive == nil {
		t.Fatal("comparison missing a topology")
	}
	if cmp.Tiered.Tiers != 2 || cmp.Naive.Tiers != 1 {
		t.Errorf("tiers %d / %d, want 2 / 1", cmp.Tiered.Tiers, cmp.Naive.Tiers)
	}
	if cmp.OriginEgressRatio <= 0 || cmp.OriginEgressRatio >= 1 {
		t.Errorf("origin egress ratio %v, want in (0, 1)", cmp.OriginEgressRatio)
	}
}

// TestCheckReportFails covers the verdict paths run() exits non-zero
// through.
func TestCheckReportFails(t *testing.T) {
	if err := checkReport("x", &fleet.Report{Converged: false}); err == nil {
		t.Error("unconverged report passed")
	}
	if err := checkReport("x", &fleet.Report{Converged: true, UnverifiedSwaps: 3}); err == nil {
		t.Error("unverified swaps passed")
	}
	if err := checkReport("x", &fleet.Report{Converged: true}); err != nil {
		t.Errorf("clean report failed: %v", err)
	}
}
