// Command pslgen materialises the simulated corpora to disk for
// inspection or for feeding other tools:
//
//	pslgen lists -out DIR [-every N]    write every N-th list version
//	pslgen repos -out DIR [-max N]      materialise repository checkouts
//	pslgen hosts -out FILE              write the snapshot hostnames
//	pslgen pairs -out FILE              write aggregated request pairs CSV
//
// Flags common to all subcommands: -seed, -scale.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/history"
	"repro/internal/httparchive"
	"repro/internal/repos"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		out   = fs.String("out", "", "output directory or file (required)")
		seed  = fs.Int64("seed", history.DefaultSeed, "generator seed")
		scale = fs.Float64("scale", 0.1, "snapshot scale")
		every = fs.Int("every", 100, "lists: write every N-th version")
		max   = fs.Int("max", 20, "repos: materialise at most N repositories")
	)
	fs.Parse(os.Args[2:])
	if *out == "" {
		fmt.Fprintln(os.Stderr, "pslgen: -out is required")
		os.Exit(2)
	}

	var err error
	switch cmd {
	case "lists":
		err = genLists(*out, *seed, *every)
	case "repos":
		err = genRepos(*out, *seed, *max)
	case "hosts":
		err = genHosts(*out, *seed, *scale)
	case "pairs":
		err = genPairs(*out, *seed, *scale)
	case "corpus":
		err = genCorpus(*out, *seed)
	case "history":
		err = genHistory(*out, *seed)
	case "snapshot":
		err = genSnapshot(*out, *seed, *scale)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pslgen:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pslgen <lists|repos|hosts|pairs|corpus|history|snapshot> -out PATH [flags]

  lists     write every N-th list version as a .dat file
  repos     materialise simulated repository checkouts
  hosts     write the snapshot hostnames, one per line
  pairs     write aggregated page->request pairs as CSV
  corpus    write the labelled 273-repository dataset as CSV (the
            equivalent of the paper's published dataset)
  history   write the full version history as a binary cache (.gob)
  snapshot  write the crawl snapshot as a binary cache (.gob)`)
}

// genCorpus writes the labelled repository dataset, mirroring the
// paper's released CSV.
func genCorpus(path string, seed int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "repository,stars,forks,strategy,subcategory,library,list_age_days,last_commit_days,missing_hostnames_paper,from_paper")
	for _, r := range repos.Corpus(seed) {
		fmt.Fprintf(w, "%s,%d,%d,%s,%s,%s,%d,%d,%d,%v\n",
			r.Name, r.Stars, r.Forks, r.Strategy, r.Sub, r.Library,
			r.ListAgeDays, r.LastCommitDays, r.MissingPaper, r.FromPaper)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote the labelled corpus to %s\n", path)
	return nil
}

// genHistory writes the version-history cache.
func genHistory(path string, seed int64) error {
	h := history.Generate(history.Config{Seed: seed})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := h.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d versions (%d bytes) to %s\n", h.Len(), n, path)
	return nil
}

// genSnapshot writes the crawl-snapshot cache.
func genSnapshot(path string, seed int64, scale float64) error {
	h := history.Generate(history.Config{Seed: seed})
	snap := httparchive.Generate(httparchive.Config{Seed: seed, Scale: scale}, h)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := snap.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d hosts / %d pairs (%d bytes) to %s\n",
		len(snap.Hosts), len(snap.Pairs), n, path)
	return nil
}

func genLists(dir string, seed int64, every int) error {
	if every < 1 {
		every = 1
	}
	h := history.Generate(history.Config{Seed: seed})
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := 0
	for seq := 0; seq < h.Len(); seq += every {
		l := h.ListAt(seq)
		name := fmt.Sprintf("public_suffix_list_v%04d_%s.dat", seq, h.Meta(seq).Date.Format("20060102"))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(l.Serialize()), 0o644); err != nil {
			return err
		}
		n++
	}
	fmt.Printf("wrote %d list versions to %s\n", n, dir)
	return nil
}

func genRepos(dir string, seed int64, max int) error {
	h := history.Generate(history.Config{Seed: seed})
	corpus := repos.Corpus(seed)
	n := 0
	for _, r := range corpus {
		if n >= max {
			break
		}
		if !r.HasKnownAge() {
			continue
		}
		embedded := h.ListAt(h.IndexForAge(r.ListAgeDays))
		sub := filepath.Join(dir, strings.ReplaceAll(r.Name, "/", "__"))
		if err := repos.Materialize(sub, r, embedded); err != nil {
			return err
		}
		n++
	}
	fmt.Printf("materialised %d repository checkouts under %s\n", n, dir)
	return nil
}

func genHosts(path string, seed int64, scale float64) error {
	h := history.Generate(history.Config{Seed: seed})
	snap := httparchive.Generate(httparchive.Config{Seed: seed, Scale: scale}, h)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, host := range snap.Hosts {
		fmt.Fprintln(w, host)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d hostnames to %s\n", len(snap.Hosts), path)
	return nil
}

func genPairs(path string, seed int64, scale float64) error {
	h := history.Generate(history.Config{Seed: seed})
	snap := httparchive.Generate(httparchive.Config{Seed: seed, Scale: scale}, h)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "page_host,request_host,requests")
	for _, p := range snap.Pairs {
		fmt.Fprintf(w, "%s,%s,%d\n", snap.Hosts[p.Page], snap.Hosts[p.Req], p.Count)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d pairs (%d requests) to %s\n", len(snap.Pairs), snap.Requests, path)
	return nil
}
