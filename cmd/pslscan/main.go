// Command pslscan is the outdated-PSL detection tool: it walks one or
// more project trees, finds embedded copies of the public suffix list,
// dates them against the simulated version history, and classifies each
// project's update strategy per the paper's Table 1 taxonomy.
//
// Usage:
//
//	pslscan [flags] <dir>...
//
// Flags:
//
//	-seed N     history generator seed (default matches the experiments)
//	-quiet      one summary line per project instead of full findings
//	-json       machine-readable JSON reports
//	-issue      ready-to-file disclosure issue per project
//
// Exit status is 1 when any scanned project embeds a list older than
// one year, so the tool can gate CI pipelines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strings"
	"time"

	"repro/internal/history"
	"repro/internal/notify"
	"repro/internal/scanner"
)

// options bundle the output mode flags.
type options struct {
	quiet, asJSON, asIssue bool
	now                    time.Time
}

func main() {
	var (
		seed    = flag.Int64("seed", history.DefaultSeed, "history generator seed")
		quiet   = flag.Bool("quiet", false, "print one summary line per project")
		asJSON  = flag.Bool("json", false, "emit machine-readable JSON reports")
		asIssue = flag.Bool("issue", false, "emit a ready-to-file disclosure issue per project")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pslscan [flags] <dir>...")
		os.Exit(2)
	}

	h := history.Generate(history.Config{Seed: *seed})
	ix := scanner.NewVersionIndex(h)
	opts := options{quiet: *quiet, asJSON: *asJSON, asIssue: *asIssue, now: time.Now().UTC()}

	stale := false
	for _, target := range flag.Args() {
		var isStale bool
		var err error
		if strings.HasSuffix(target, ".zip") {
			isStale, err = scanZipTarget(os.Stdout, target, ix, opts)
		} else {
			isStale, err = scanOne(os.Stdout, os.DirFS(target), target, ix, opts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pslscan: %s: %v\n", target, err)
			os.Exit(1)
		}
		stale = stale || isStale
	}
	if stale {
		os.Exit(1)
	}
}

// scanZipTarget scans a zip archive (e.g. a GitHub download) in place.
func scanZipTarget(w io.Writer, path string, ix *scanner.VersionIndex, opts options) (bool, error) {
	rep, err := scanner.ScanZip(path, ix)
	if err != nil {
		return false, err
	}
	return renderReport(w, rep, path, opts)
}

// scanOne scans a single tree and renders the report in the selected
// mode, reporting whether the tree carries a list older than a year.
func scanOne(w io.Writer, fsys fs.FS, label string, ix *scanner.VersionIndex, opts options) (bool, error) {
	rep, err := scanner.Scan(fsys, label, ix)
	if err != nil {
		return false, err
	}
	return renderReport(w, rep, label, opts)
}

// renderReport writes a scan report in the selected output mode and
// reports staleness.
func renderReport(w io.Writer, rep *scanner.Report, label string, opts options) (bool, error) {
	switch {
	case opts.asJSON:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return false, err
		}
	case opts.asIssue:
		issue := &notify.Report{
			Project:           label,
			Scan:              rep,
			AffectedHostnames: -1,
			Date:              opts.now,
		}
		fmt.Fprintln(w, issue.Markdown())
	default:
		printReport(w, rep, opts.quiet)
	}
	return rep.OldestAgeDays() > 365, nil
}

func printReport(w io.Writer, rep *scanner.Report, quiet bool) {
	if quiet {
		fmt.Fprintf(w, "%s\t%s/%s\tcopies=%d\toldest=%dd\n",
			rep.Root, rep.Strategy, rep.Sub, len(rep.Findings), rep.OldestAgeDays())
		return
	}
	fmt.Fprintf(w, "%s\n", rep.Root)
	fmt.Fprintf(w, "  strategy: %s/%s\n", rep.Strategy, rep.Sub)
	if len(rep.Findings) == 0 {
		fmt.Fprintln(w, "  no embedded public suffix list found")
	}
	for _, f := range rep.Findings {
		exact := "nearest"
		if f.ID.Exact >= 0 {
			exact = "exact"
		}
		fmt.Fprintf(w, "  %s: %d rules, %s match v%d (similarity %.3f), age %d days, missing %d rules vs latest\n",
			f.Path, f.Rules, exact, f.ID.Nearest, f.ID.Similarity, f.ID.AgeDays, f.ID.MissingVsLatest)
	}
	for _, e := range rep.Evidence {
		fmt.Fprintf(w, "  evidence: %s\n", e)
	}
}
