package main

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/fstest"
	"time"

	"repro/internal/history"
	"repro/internal/scanner"
)

var (
	testHistory = history.Generate(history.Config{Seed: history.DefaultSeed})
	testIndex   = scanner.NewVersionIndex(testHistory)
)

func tree(listVersion int) fstest.MapFS {
	return fstest.MapFS{
		"data/public_suffix_list.dat": &fstest.MapFile{
			Data: []byte(testHistory.ListAt(listVersion).Serialize()),
		},
		"src/app.py": &fstest.MapFile{Data: []byte("open('data/public_suffix_list.dat')\n")},
	}
}

func TestScanOneDefault(t *testing.T) {
	var b strings.Builder
	stale, err := scanOne(&b, tree(500), "demo/repo", testIndex, options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stale {
		t.Error("version 500 is years old; stale flag not set")
	}
	out := b.String()
	for _, want := range []string{"demo/repo", "strategy: fixed/production", "exact match v", "missing"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScanOneQuiet(t *testing.T) {
	var b strings.Builder
	if _, err := scanOne(&b, tree(500), "demo/repo", testIndex, options{quiet: true}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "copies=1") {
		t.Errorf("quiet output: %q", b.String())
	}
}

func TestScanOneJSON(t *testing.T) {
	var b strings.Builder
	if _, err := scanOne(&b, tree(500), "demo/repo", testIndex, options{asJSON: true}); err != nil {
		t.Fatal(err)
	}
	var rep scanner.Report
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if rep.Root != "demo/repo" || len(rep.Findings) != 1 {
		t.Errorf("decoded report: %+v", rep)
	}
}

func TestScanOneIssue(t *testing.T) {
	var b strings.Builder
	opts := options{asIssue: true, now: time.Date(2022, 12, 8, 0, 0, 0, 0, time.UTC)}
	if _, err := scanOne(&b, tree(500), "demo/repo", testIndex, opts); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"out of date", "## Recommended fix", "2022-12-08"} {
		if !strings.Contains(out, want) {
			t.Errorf("issue missing %q", want)
		}
	}
}

func TestScanOneFreshNotStale(t *testing.T) {
	var b strings.Builder
	stale, err := scanOne(&b, tree(testHistory.Len()-1), "fresh/repo", testIndex, options{quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	if stale {
		t.Error("latest list flagged stale")
	}
}
