package main

import (
	"io"
	"strings"
	"testing"
)

const validDoc = `# HELP psl_demo_total A demo counter.
# TYPE psl_demo_total counter
psl_demo_total 3
# HELP psl_demo_duration_seconds A demo histogram.
# TYPE psl_demo_duration_seconds histogram
psl_demo_duration_seconds_bucket{le="0.1"} 2
psl_demo_duration_seconds_bucket{le="+Inf"} 3
psl_demo_duration_seconds_sum 0.5
psl_demo_duration_seconds_count 3
`

func TestLintValid(t *testing.T) {
	families, err := lint(strings.NewReader(validDoc), nil, 2, true, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(families) != 2 {
		t.Fatalf("families = %v, want 2", families)
	}
}

func TestLintRequireMissing(t *testing.T) {
	_, err := lint(strings.NewReader(validDoc), []string{"psl_demo_total", "psl_absent_total"}, 0, true, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "psl_absent_total") {
		t.Fatalf("err = %v, want missing psl_absent_total", err)
	}
}

func TestLintMinFamilies(t *testing.T) {
	if _, err := lint(strings.NewReader(validDoc), nil, 3, true, io.Discard); err == nil {
		t.Fatal("accepted document below -min-families")
	}
}

func TestLintRejectsBrokenHistogram(t *testing.T) {
	broken := strings.Replace(validDoc, `le="+Inf"} 3`, `le="+Inf"} 2`, 1)
	if _, err := lint(strings.NewReader(broken), nil, 0, true, io.Discard); err == nil {
		t.Fatal("accepted histogram whose +Inf bucket disagrees with _count")
	}
}

// unitlessDoc is a well-formed exposition whose histogram family lacks
// the _seconds/_bytes unit suffix the repo convention requires.
const unitlessDoc = `# HELP psl_demo_latency A histogram without a unit suffix.
# TYPE psl_demo_latency histogram
psl_demo_latency_bucket{le="0.1"} 2
psl_demo_latency_bucket{le="+Inf"} 3
psl_demo_latency_sum 0.5
psl_demo_latency_count 3
`

func TestLintRejectsUnitlessHistogram(t *testing.T) {
	_, err := lint(strings.NewReader(unitlessDoc), nil, 0, true, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "psl_demo_latency") {
		t.Fatalf("err = %v, want unit-suffix failure naming psl_demo_latency", err)
	}
}

func TestLintUnitsCheckDisabled(t *testing.T) {
	if _, err := lint(strings.NewReader(unitlessDoc), nil, 0, false, io.Discard); err != nil {
		t.Fatalf("-no-units lint failed: %v", err)
	}
}

func TestLintAcceptsBytesHistogram(t *testing.T) {
	doc := strings.ReplaceAll(unitlessDoc, "psl_demo_latency", "psl_demo_size_bytes")
	if _, err := lint(strings.NewReader(doc), nil, 0, true, io.Discard); err != nil {
		t.Fatalf("rejected _bytes histogram: %v", err)
	}
}
