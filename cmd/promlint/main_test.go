package main

import (
	"io"
	"strings"
	"testing"
)

const validDoc = `# HELP psl_demo_total A demo counter.
# TYPE psl_demo_total counter
psl_demo_total 3
# HELP psl_demo_duration_seconds A demo histogram.
# TYPE psl_demo_duration_seconds histogram
psl_demo_duration_seconds_bucket{le="0.1"} 2
psl_demo_duration_seconds_bucket{le="+Inf"} 3
psl_demo_duration_seconds_sum 0.5
psl_demo_duration_seconds_count 3
`

func TestLintValid(t *testing.T) {
	families, err := lint(strings.NewReader(validDoc), nil, 2, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(families) != 2 {
		t.Fatalf("families = %v, want 2", families)
	}
}

func TestLintRequireMissing(t *testing.T) {
	_, err := lint(strings.NewReader(validDoc), []string{"psl_demo_total", "psl_absent_total"}, 0, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "psl_absent_total") {
		t.Fatalf("err = %v, want missing psl_absent_total", err)
	}
}

func TestLintMinFamilies(t *testing.T) {
	if _, err := lint(strings.NewReader(validDoc), nil, 3, io.Discard); err == nil {
		t.Fatal("accepted document below -min-families")
	}
}

func TestLintRejectsBrokenHistogram(t *testing.T) {
	broken := strings.Replace(validDoc, `le="+Inf"} 3`, `le="+Inf"} 2`, 1)
	if _, err := lint(strings.NewReader(broken), nil, 0, io.Discard); err == nil {
		t.Fatal("accepted histogram whose +Inf bucket disagrees with _count")
	}
}
