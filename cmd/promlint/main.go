// Command promlint validates a Prometheus text-exposition document — a
// /metrics scrape saved to a file, or piped on stdin — against the
// format rules internal/obs emits and CI enforces: HELP/TYPE ordering,
// sample syntax, label quoting, histogram bucket consistency
// (cumulative buckets, +Inf equal to _count), and histogram naming
// units (every histogram family must end in _seconds or _bytes, the
// convention DESIGN.md §10 fixes so dashboards never guess a unit).
//
//	pslserver &
//	curl -s http://127.0.0.1:8353/metrics | promlint -require psl_serve_lookups_total
//
// Flags:
//
//	-require NAMES  comma-separated metric families that must be
//	                present; missing families fail the lint
//	-min-families N fail unless at least N families are exposed
//	-no-units       skip the histogram unit-suffix check (for linting
//	                foreign expositions that follow other conventions)
//	-q              suppress the family listing on success
//
// Exit status 0 when the document is valid (and every requirement is
// met), 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
)

// checkHistogramUnits enforces the repo's unit-suffix convention on
// histogram families: the family name must end in _seconds or _bytes.
func checkHistogramUnits(infos []obs.FamilyInfo) error {
	var bad []string
	for _, fi := range infos {
		if fi.Type != "histogram" {
			continue
		}
		if !strings.HasSuffix(fi.Name, "_seconds") && !strings.HasSuffix(fi.Name, "_bytes") {
			bad = append(bad, fi.Name)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("histogram families without a _seconds/_bytes unit suffix: %s", strings.Join(bad, ", "))
	}
	return nil
}

// lint validates one document and applies the -require / -min-families
// / unit-suffix checks, writing diagnostics to w. It returns the family
// names and the first error.
func lint(r io.Reader, require []string, minFamilies int, checkUnits bool, w io.Writer) ([]string, error) {
	infos, err := obs.ValidateExpositionInfo(r)
	if err != nil {
		return nil, err
	}
	families := make([]string, len(infos))
	have := make(map[string]bool, len(infos))
	for i, fi := range infos {
		families[i] = fi.Name
		have[fi.Name] = true
	}
	if checkUnits {
		if err := checkHistogramUnits(infos); err != nil {
			return families, err
		}
	}
	var missing []string
	for _, name := range require {
		if name = strings.TrimSpace(name); name != "" && !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return families, fmt.Errorf("missing required families: %s", strings.Join(missing, ", "))
	}
	if len(families) < minFamilies {
		return families, fmt.Errorf("%d families exposed, need at least %d", len(families), minFamilies)
	}
	fmt.Fprintf(w, "valid exposition: %d families\n", len(families))
	return families, nil
}

func main() {
	var (
		require     = flag.String("require", "", "comma-separated families that must be present")
		minFamilies = flag.Int("min-families", 0, "minimum number of metric families")
		noUnits     = flag.Bool("no-units", false, "skip the histogram unit-suffix check")
		quiet       = flag.Bool("q", false, "suppress the family listing on success")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	name := "<stdin>"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "promlint: at most one input file")
		os.Exit(1)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	var reqs []string
	if *require != "" {
		reqs = strings.Split(*require, ",")
	}
	families, err := lint(in, reqs, *minFamilies, !*noUnits, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
		os.Exit(1)
	}
	if !*quiet {
		for _, f := range families {
			fmt.Println(f)
		}
	}
}
