// Command promlint validates a Prometheus text-exposition document — a
// /metrics scrape saved to a file, or piped on stdin — against the
// format rules internal/obs emits and CI enforces: HELP/TYPE ordering,
// sample syntax, label quoting, and histogram bucket consistency
// (cumulative buckets, +Inf equal to _count).
//
//	pslserver &
//	curl -s http://127.0.0.1:8353/metrics | promlint -require psl_serve_lookups_total
//
// Flags:
//
//	-require NAMES  comma-separated metric families that must be
//	                present; missing families fail the lint
//	-min-families N fail unless at least N families are exposed
//	-q              suppress the family listing on success
//
// Exit status 0 when the document is valid (and every requirement is
// met), 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
)

// lint validates one document and applies the -require / -min-families
// checks, writing diagnostics to w. It returns the family names and the
// first error.
func lint(r io.Reader, require []string, minFamilies int, w io.Writer) ([]string, error) {
	families, err := obs.ValidateExposition(r)
	if err != nil {
		return nil, err
	}
	have := make(map[string]bool, len(families))
	for _, f := range families {
		have[f] = true
	}
	var missing []string
	for _, name := range require {
		if name = strings.TrimSpace(name); name != "" && !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return families, fmt.Errorf("missing required families: %s", strings.Join(missing, ", "))
	}
	if len(families) < minFamilies {
		return families, fmt.Errorf("%d families exposed, need at least %d", len(families), minFamilies)
	}
	fmt.Fprintf(w, "valid exposition: %d families\n", len(families))
	return families, nil
}

func main() {
	var (
		require     = flag.String("require", "", "comma-separated families that must be present")
		minFamilies = flag.Int("min-families", 0, "minimum number of metric families")
		quiet       = flag.Bool("q", false, "suppress the family listing on success")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	name := "<stdin>"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "promlint: at most one input file")
		os.Exit(1)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	var reqs []string
	if *require != "" {
		reqs = strings.Split(*require, ",")
	}
	families, err := lint(in, reqs, *minFamilies, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
		os.Exit(1)
	}
	if !*quiet {
		for _, f := range families {
			fmt.Println(f)
		}
	}
}
