package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/history"
)

// histArgs keeps every subcommand on the same small history.
var histArgs = []string{"-versions", "30"}

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("psldist %s: %v", strings.Join(args, " "), err)
	}
	return out.String()
}

// TestPatchFullApplyPipeline drives the three blob subcommands end to
// end: cut a full snapshot and a patch out of the history, apply one to
// the other, and check the result is byte-identical to the full blob
// of the target version.
func TestPatchFullApplyPipeline(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "5.pslf")
	patch := filepath.Join(dir, "5-20.psld")
	got := filepath.Join(dir, "20-applied.pslf")
	want := filepath.Join(dir, "20.pslf")

	runOK(t, append([]string{"full", "-seq", "5", "-out", base}, histArgs...)...)
	runOK(t, append([]string{"patch", "-from", "5", "-to", "20", "-out", patch}, histArgs...)...)
	runOK(t, append([]string{"full", "-seq", "20", "-out", want}, histArgs...)...)
	out := runOK(t, "apply", "-base", base, "-patch", patch, "-out", got)
	if !strings.Contains(out, "fingerprints verified") {
		t.Errorf("apply output: %s", out)
	}

	gotData, err := os.ReadFile(got)
	if err != nil {
		t.Fatal(err)
	}
	wantData, err := os.ReadFile(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotData, wantData) {
		t.Fatalf("applied blob differs from directly encoded v20 blob (%d vs %d bytes)", len(gotData), len(wantData))
	}

	// The decoded result matches the library list.
	f, err := dist.DecodeFull(gotData)
	if err != nil {
		t.Fatal(err)
	}
	l, err := f.List()
	if err != nil {
		t.Fatal(err)
	}
	h := history.Generate(history.Config{Seed: history.DefaultSeed, Versions: 30})
	if l.Serialize() != h.ListAt(20).Serialize() {
		t.Fatal("applied list differs from ListAt(20)")
	}
}

// TestApplyRejectsMismatches pins the verification contract at the CLI
// surface: wrong base version and corrupted blobs fail loudly.
func TestApplyRejectsMismatches(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "7.pslf")
	patch := filepath.Join(dir, "5-20.psld")
	runOK(t, append([]string{"full", "-seq", "7", "-out", base}, histArgs...)...)
	runOK(t, append([]string{"patch", "-from", "5", "-to", "20", "-out", patch}, histArgs...)...)

	var out bytes.Buffer
	err := run([]string{"apply", "-base", base, "-patch", patch, "-out", filepath.Join(dir, "x")}, &out)
	if err == nil || !strings.Contains(err.Error(), "patch takes v0005") {
		t.Errorf("seq-mismatched apply: %v", err)
	}

	// Flip one byte in the patch body: decode must fail on checksum.
	data, _ := os.ReadFile(patch)
	data[len(data)/2] ^= 0x40
	bad := filepath.Join(dir, "bad.psld")
	os.WriteFile(bad, data, 0o644)
	err = run([]string{"apply", "-base", base, "-patch", bad, "-out", filepath.Join(dir, "y")}, &out)
	if err == nil {
		t.Error("corrupted patch applied cleanly")
	}
}

// TestStatChainAndBlobs covers both stat modes.
func TestStatChainAndBlobs(t *testing.T) {
	out := runOK(t, append([]string{"stat"}, histArgs...)...)
	var doc statDoc
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("stat output not JSON: %v\n%s", err, out)
	}
	if doc.Versions != 30 || doc.PatchBytesTotal <= 0 || doc.FullOverPatchRatio <= 1 {
		t.Errorf("stat doc %+v", doc)
	}

	dir := t.TempDir()
	patch := filepath.Join(dir, "p.psld")
	full := filepath.Join(dir, "f.pslf")
	runOK(t, append([]string{"patch", "-from", "2", "-to", "9", "-out", patch}, histArgs...)...)
	runOK(t, append([]string{"full", "-seq", "9", "-out", full}, histArgs...)...)

	out = runOK(t, "stat", patch, full)
	dec := json.NewDecoder(strings.NewReader(out))
	var pi, fi blobInfo
	if err := dec.Decode(&pi); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&fi); err != nil {
		t.Fatal(err)
	}
	if pi.Kind != "patch" || pi.FromSeq != 2 || pi.ToSeq != 9 || len(pi.ToFP) != 64 {
		t.Errorf("patch info %+v", pi)
	}
	if fi.Kind != "full" || fi.ToSeq != 9 || fi.Rules <= 0 || fi.ToFP != pi.ToFP {
		t.Errorf("full info %+v (patch target fp %s)", fi, pi.ToFP)
	}
}

// TestBadInvocations pins argument validation.
func TestBadInvocations(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{},
		{"nope"},
		{"patch", "-from", "5", "-to", "5"},
		{"patch", "-from", "-1", "-to", "3"},
		{"patch", "-from", "0", "-to", "99999", "-versions", "30"},
		{"full", "-seq", "-1"},
		{"full", "-seq", "99999", "-versions", "30"},
		{"full", "-seq", "2", "-versions", "1"},
		{"apply"},
		{"apply", "-base", "/nonexistent", "-patch", "/nonexistent"},
		{"stat", "/nonexistent-blob"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("psldist %s succeeded, want error", strings.Join(args, " "))
		}
	}
}
