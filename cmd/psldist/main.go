// Command psldist works with the internal/dist snapshot-distribution
// codec from the command line: cutting patch and full-snapshot blobs
// out of the simulated history, applying a patch to a snapshot with
// full fingerprint verification, and pricing the whole delta chain.
//
//	psldist patch -from 10 -to 42 -out 10-42.psld   encode one delta
//	psldist full -seq 42 -out 42.pslf               encode one snapshot
//	psldist apply -base 10.pslf -patch 10-42.psld -out 42.pslf
//	psldist stat                                     chain economics (JSON)
//	psldist stat 10-42.psld 42.pslf                  describe blobs
//
// All subcommands accept -seed and -versions to shape the generated
// history (defaults match pslserver). apply is pure codec — it needs no
// history, and it fails loudly when either fingerprint does not verify.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/dist"
	"repro/internal/history"
)

// histFlags are the history-shaping flags shared by patch/full/stat.
type histFlags struct {
	seed     int64
	versions int
}

func (hf *histFlags) register(fs *flag.FlagSet) {
	fs.Int64Var(&hf.seed, "seed", history.DefaultSeed, "history generator seed")
	fs.IntVar(&hf.versions, "versions", 0, "history versions to generate (0 = full default history)")
}

func (hf *histFlags) generate() (*history.History, error) {
	if hf.versions != 0 && hf.versions < 2 {
		return nil, fmt.Errorf("-versions %d must be at least 2 (or 0 for the full history)", hf.versions)
	}
	return history.Generate(history.Config{Seed: hf.seed, Versions: hf.versions}), nil
}

// writeBlob writes data to path, or to stdout when path is "-".
func writeBlob(stdout io.Writer, path string, data []byte) error {
	if path == "-" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func runPatch(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("psldist patch", flag.ContinueOnError)
	var hf histFlags
	hf.register(fs)
	from := fs.Int("from", -1, "source version seq")
	to := fs.Int("to", -1, "target version seq")
	out := fs.String("out", "-", "output path ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h, err := hf.generate()
	if err != nil {
		return err
	}
	if *from < 0 || *to >= h.Len() || *from >= *to {
		return fmt.Errorf("need 0 <= -from < -to <= %d, got %d and %d", h.Len()-1, *from, *to)
	}
	p := dist.NewChain(h).Patch(*from, *to)
	data := p.Encode()
	if err := writeBlob(stdout, *out, data); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(stdout, "psldist: wrote %s (%d bytes, v%04d -> v%04d, +%d -%d ~%d rules)\n",
			*out, len(data), p.FromSeq, p.ToSeq, len(p.Added), len(p.Removed), len(p.Moved))
	}
	return nil
}

func runFull(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("psldist full", flag.ContinueOnError)
	var hf histFlags
	hf.register(fs)
	seq := fs.Int("seq", -1, "version seq to snapshot")
	out := fs.String("out", "-", "output path ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h, err := hf.generate()
	if err != nil {
		return err
	}
	if *seq < 0 || *seq >= h.Len() {
		return fmt.Errorf("-seq %d out of range [0, %d]", *seq, h.Len()-1)
	}
	data := dist.EncodeFull(h.ListAt(*seq), *seq)
	if err := writeBlob(stdout, *out, data); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(stdout, "psldist: wrote %s (%d bytes, v%04d, %d rules)\n",
			*out, len(data), *seq, h.Meta(*seq).Rules)
	}
	return nil
}

func runApply(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("psldist apply", flag.ContinueOnError)
	base := fs.String("base", "", "full snapshot blob to apply the patch to")
	patch := fs.String("patch", "", "patch blob")
	out := fs.String("out", "-", "output path for the resulting full blob ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *base == "" || *patch == "" {
		return fmt.Errorf("apply needs -base and -patch")
	}
	baseData, err := os.ReadFile(*base)
	if err != nil {
		return err
	}
	patchData, err := os.ReadFile(*patch)
	if err != nil {
		return err
	}
	f, err := dist.DecodeFull(baseData)
	if err != nil {
		return fmt.Errorf("%s: %w", *base, err)
	}
	baseList, err := f.List()
	if err != nil {
		return fmt.Errorf("%s: %w", *base, err)
	}
	p, err := dist.DecodePatch(patchData)
	if err != nil {
		return fmt.Errorf("%s: %w", *patch, err)
	}
	if p.FromSeq != f.Seq {
		return fmt.Errorf("patch takes v%04d, base blob is v%04d", p.FromSeq, f.Seq)
	}
	applied, err := p.Apply(baseList, f.FP)
	if err != nil {
		return err
	}
	if err := writeBlob(stdout, *out, dist.EncodeFull(applied, p.ToSeq)); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(stdout, "psldist: applied %s: v%04d -> v%04d (%d rules), fingerprints verified\n",
			*patch, p.FromSeq, p.ToSeq, applied.Len())
	}
	return nil
}

// blobInfo is the JSON description of one blob printed by stat.
type blobInfo struct {
	Path    string `json:"path"`
	Kind    string `json:"kind"`
	Bytes   int    `json:"bytes"`
	FromSeq int    `json:"from_seq,omitempty"`
	ToSeq   int    `json:"to_seq"`
	FromFP  string `json:"from_fingerprint,omitempty"`
	ToFP    string `json:"to_fingerprint"`
	Version string `json:"version"`
	Rules   int    `json:"rules,omitempty"`
	Added   int    `json:"added,omitempty"`
	Removed int    `json:"removed,omitempty"`
	Moved   int    `json:"moved,omitempty"`
}

func describeBlob(path string) (blobInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return blobInfo{}, err
	}
	info := blobInfo{Path: path, Bytes: len(data)}
	if p, err := dist.DecodePatch(data); err == nil {
		info.Kind = "patch"
		info.FromSeq, info.ToSeq = p.FromSeq, p.ToSeq
		info.FromFP, info.ToFP = p.FromFP, p.ToFP
		info.Version = p.ToVersion
		info.Added, info.Removed, info.Moved = len(p.Added), len(p.Removed), len(p.Moved)
		return info, nil
	}
	f, err := dist.DecodeFull(data)
	if err != nil {
		return blobInfo{}, fmt.Errorf("%s: neither a patch nor a full blob: %w", path, err)
	}
	info.Kind = "full"
	info.ToSeq, info.ToFP = f.Seq, f.FP
	info.Version = f.Version
	info.Rules = len(f.Rules)
	return info, nil
}

// statDoc is the JSON document stat prints without blob arguments.
type statDoc struct {
	dist.ChainStats
	FullOverPatchRatio float64 `json:"full_over_patch_ratio"`
	ComputeSeconds     float64 `json:"compute_seconds"`
}

func runStat(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("psldist stat", flag.ContinueOnError)
	var hf histFlags
	hf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if fs.NArg() > 0 {
		for _, path := range fs.Args() {
			info, err := describeBlob(path)
			if err != nil {
				return err
			}
			if err := enc.Encode(info); err != nil {
				return err
			}
		}
		return nil
	}
	h, err := hf.generate()
	if err != nil {
		return err
	}
	start := time.Now()
	s := dist.ComputeChainStats(h)
	return enc.Encode(statDoc{
		ChainStats:         s,
		FullOverPatchRatio: s.Ratio(),
		ComputeSeconds:     time.Since(start).Seconds(),
	})
}

const usage = `usage: psldist <patch|full|apply|stat> [flags]

  patch -from F -to T [-out X]           encode the delta taking version F to T
  full -seq S [-out X]                   encode the full snapshot of version S
  apply -base B -patch P [-out X]        apply patch P to full blob B (verified)
  stat [blob ...]                        chain economics, or describe blobs
`

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand\n%s", usage)
	}
	switch args[0] {
	case "patch":
		return runPatch(args[1:], stdout)
	case "full":
		return runFull(args[1:], stdout)
	case "apply":
		return runApply(args[1:], stdout)
	case "stat":
		return runStat(args[1:], stdout)
	default:
		return fmt.Errorf("unknown subcommand %q\n%s", args[0], usage)
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "psldist:", err)
		os.Exit(1)
	}
}
