// pslbench emits the repository's machine-readable performance
// baseline: ns/op and allocs/op for all five matcher representations
// over the standard 9k-rule ablation list, the packed compile and blob
// costs, and the serial-vs-parallel per-version sweep. Results are
// written as JSON (default BENCH_matchers.json) so successive runs can
// be diffed to track the perf trajectory.
//
//	go run ./cmd/pslbench -out BENCH_matchers.json
//
// The measurements mirror the benchmarks in internal/psl and
// bench_test.go (same list shape, same name mix, same sweep size), just
// run through testing.Benchmark so a single command produces one
// comparable artefact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/history"
	"repro/internal/psl"
)

// benchRules mirrors internal/psl's benchList: a realistic 9k-rule mix
// of one-label TLDs and two-label entries, plus com/co.uk/uk.
func benchRules(n int) *psl.List {
	rng := rand.New(rand.NewSource(99))
	rules := make([]psl.Rule, 0, n)
	rules = append(rules, psl.Rule{Suffix: "com"}, psl.Rule{Suffix: "co.uk"}, psl.Rule{Suffix: "uk"})
	for len(rules) < n {
		rules = append(rules, psl.Rule{Suffix: fmt.Sprintf("r%d.tld%d", rng.Intn(5000), rng.Intn(400))})
	}
	return psl.NewList(rules)
}

// benchNames is the lookup mix of the matcher ablations: common, deep,
// listed, sub-of-listed and unlisted names.
var benchNames = []string{
	"www.example.com",
	"a.b.c.d.example.co.uk",
	"r17.tld3",
	"deep.r17.tld3",
	"unlisted.zone",
}

// matcherResult is one matcher's measured lookup cost.
type matcherResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// sweepResult compares the serial and parallel per-version sweeps.
type sweepResult struct {
	Versions        int     `json:"versions"`
	Workers         int     `json:"workers"`
	SerialNsPerOp   float64 `json:"serial_ns_per_op"`
	ParallelNsPerOp float64 `json:"parallel_ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

// distResult is the delta-distribution ablation: cumulative patch
// bytes versus cumulative full-snapshot bytes over the whole history
// (mirrors BenchmarkPatchChain in internal/dist).
type distResult struct {
	dist.ChainStats
	FullOverPatchRatio float64 `json:"full_over_patch_ratio"`
}

// output is the whole BENCH_matchers.json document.
type output struct {
	GoVersion         string                   `json:"go_version"`
	GOMAXPROCS        int                      `json:"gomaxprocs"`
	NumCPU            int                      `json:"num_cpu"`
	Rules             int                      `json:"rules"`
	Matchers          map[string]matcherResult `json:"matchers"`
	TrieOverPackedNs  float64                  `json:"trie_over_packed_ns_ratio"`
	PackedCompileNsOp float64                  `json:"packed_compile_ns_per_op"`
	PackedBlobBytes   int                      `json:"packed_blob_bytes"`
	PackedTableBytes  int                      `json:"packed_table_bytes"`
	Sweep             *sweepResult             `json:"sweep,omitempty"`
	Dist              *distResult              `json:"dist,omitempty"`
	Notes             []string                 `json:"notes,omitempty"`
}

// measure runs one matcher over the standard name mix under
// testing.Benchmark.
func measure(m psl.Matcher) matcherResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		k := 0
		for i := 0; i < b.N; i++ {
			m.Match(benchNames[k])
			if k++; k == len(benchNames) {
				k = 0
			}
		}
	})
	return matcherResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// sweepSeqs spreads n version sequences evenly over the history, like
// bench_test.go's benchSweepSeqs.
func sweepSeqs(e *experiments.Env, n int) []int {
	seqs := make([]int, n)
	for i := range seqs {
		seqs[i] = i * (e.H.Len() - 1) / (n - 1)
	}
	return seqs
}

// measureSweep times the Figure 5/6/7 recomputation sweep serially and
// across GOMAXPROCS workers, over a warmed compile cache.
func measureSweep(scale float64, versions int) sweepResult {
	e := experiments.New(history.DefaultSeed, scale)
	seqs := sweepSeqs(e, versions)
	e.Sweep(seqs, 1) // warm the compile cache; both runs time matching only
	serial := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Sweep(seqs, 1)
		}
	})
	parallel := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Sweep(seqs, 0)
		}
	})
	s := sweepResult{
		Versions:        versions,
		Workers:         runtime.GOMAXPROCS(0),
		SerialNsPerOp:   float64(serial.T.Nanoseconds()) / float64(serial.N),
		ParallelNsPerOp: float64(parallel.T.Nanoseconds()) / float64(parallel.N),
	}
	if s.ParallelNsPerOp > 0 {
		s.Speedup = s.SerialNsPerOp / s.ParallelNsPerOp
	}
	return s
}

// collect produces the full document.
func collect(rules int, scale float64, versions int, withSweep bool) output {
	l := benchRules(rules)
	out := output{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Rules:      l.Len(),
		Matchers:   make(map[string]matcherResult, 5),
	}
	out.Matchers["map"] = measure(psl.NewMapMatcher(l))
	out.Matchers["trie"] = measure(psl.NewTrieMatcher(l))
	out.Matchers["sorted"] = measure(psl.NewSortedMatcher(l))
	out.Matchers["linear"] = measure(psl.NewLinearMatcher(l))
	pm := psl.NewPackedMatcher(l)
	out.Matchers["packed"] = measure(pm)
	if p := out.Matchers["packed"].NsPerOp; p > 0 {
		out.TrieOverPackedNs = out.Matchers["trie"].NsPerOp / p
	}
	compile := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			psl.NewPackedMatcher(l)
		}
	})
	out.PackedCompileNsOp = float64(compile.T.Nanoseconds()) / float64(compile.N)
	out.PackedBlobBytes = len(pm.Marshal())
	out.PackedTableBytes = pm.SizeBytes()
	ds := dist.ComputeChainStats(history.Generate(history.Config{Seed: history.DefaultSeed}))
	out.Dist = &distResult{ChainStats: ds, FullOverPatchRatio: ds.Ratio()}
	if withSweep {
		s := measureSweep(scale, versions)
		out.Sweep = &s
		if out.GOMAXPROCS < 4 {
			out.Notes = append(out.Notes,
				fmt.Sprintf("parallel-sweep speedup measured at GOMAXPROCS=%d; the >=2x acceptance bar applies at GOMAXPROCS>=4", out.GOMAXPROCS))
		}
		if out.GOMAXPROCS > out.NumCPU {
			out.Notes = append(out.Notes,
				fmt.Sprintf("GOMAXPROCS=%d oversubscribes the host's %d CPU(s); parallel speedup ~1x is expected", out.GOMAXPROCS, out.NumCPU))
		}
	}
	return out
}

func main() {
	outPath := flag.String("out", "BENCH_matchers.json", "output JSON path ('-' for stdout)")
	rules := flag.Int("rules", 9000, "benchmark list size")
	scale := flag.Float64("scale", 0.2, "snapshot scale for the sweep benchmark")
	versions := flag.Int("versions", 32, "versions per sweep")
	noSweep := flag.Bool("no-sweep", false, "skip the per-version sweep benchmark")
	flag.Parse()

	doc := collect(*rules, *scale, *versions, !*noSweep)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pslbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *outPath == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "pslbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (packed %.1f ns/op, trie/packed %.2fx)\n",
		*outPath, doc.Matchers["packed"].NsPerOp, doc.TrieOverPackedNs)
}
