// pslbench emits the repository's machine-readable performance
// baseline: ns/op and allocs/op for all five matcher representations
// over the standard 9k-rule ablation list, the packed compile and blob
// costs, the serial-vs-parallel per-version sweep, and the batched
// lookup scaling matrix (GOMAXPROCS 1/2/4/8, /v1/batch vs single
// lookups, in-process and over HTTP). Results are written as JSON
// (default BENCH_matchers.json) so successive runs can be diffed to
// track the perf trajectory.
//
//	go run ./cmd/pslbench -out BENCH_matchers.json
//
// The measurements mirror the benchmarks in internal/psl and
// bench_test.go (same list shape, same name mix, same sweep size), just
// run through testing.Benchmark so a single command produces one
// comparable artefact.
//
// Scaling rows where GOMAXPROCS exceeds the host's CPU count carry
// "scaling": "unmeasured" — oversubscribed workers measure scheduler
// noise, not parallel speedup — and per_core_efficiency (speedup
// divided by cores) is recorded instead of a bare speedup so a
// single-core run cannot masquerade as a scaling result.
//
// With -check the run turns into a CI gate: it exits nonzero when the
// steady-state batch path costs more per row than a cached single
// lookup, or when the HTTP batch endpoint fails to beat single-request
// throughput by at least 3x per core.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"

	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/history"
	"repro/internal/psl"
	"repro/internal/serve"
)

// benchRules mirrors internal/psl's benchList: a realistic 9k-rule mix
// of one-label TLDs and two-label entries, plus com/co.uk/uk.
func benchRules(n int) *psl.List {
	rng := rand.New(rand.NewSource(99))
	rules := make([]psl.Rule, 0, n)
	rules = append(rules, psl.Rule{Suffix: "com"}, psl.Rule{Suffix: "co.uk"}, psl.Rule{Suffix: "uk"})
	for len(rules) < n {
		rules = append(rules, psl.Rule{Suffix: fmt.Sprintf("r%d.tld%d", rng.Intn(5000), rng.Intn(400))})
	}
	return psl.NewList(rules)
}

// benchNames is the lookup mix of the matcher ablations: common, deep,
// listed, sub-of-listed and unlisted names.
var benchNames = []string{
	"www.example.com",
	"a.b.c.d.example.co.uk",
	"r17.tld3",
	"deep.r17.tld3",
	"unlisted.zone",
}

// matcherResult is one matcher's measured lookup cost.
type matcherResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// sweepResult compares the serial and parallel per-version sweeps.
// Speedup alone is misleading on small hosts — a GOMAXPROCS=1 run
// reports ~1x and says nothing about scaling — so the row also carries
// per_core_efficiency (speedup / workers) and an explicit
// "scaling": "unmeasured" marker whenever the worker count cannot
// demonstrate parallelism on this host.
type sweepResult struct {
	Versions          int     `json:"versions"`
	Workers           int     `json:"workers"`
	SerialNsPerOp     float64 `json:"serial_ns_per_op"`
	ParallelNsPerOp   float64 `json:"parallel_ns_per_op"`
	Speedup           float64 `json:"speedup"`
	PerCoreEfficiency float64 `json:"per_core_efficiency"`
	Scaling           string  `json:"scaling,omitempty"`
}

// distResult is the delta-distribution ablation: cumulative patch
// bytes versus cumulative full-snapshot bytes over the whole history
// (mirrors BenchmarkPatchChain in internal/dist).
type distResult struct {
	dist.ChainStats
	FullOverPatchRatio float64 `json:"full_over_patch_ratio"`
}

// scalingRow is one GOMAXPROCS point of the batch scaling matrix:
// steady-state cached cost per row through LookupBatch versus one
// single Lookup, both under RunParallel at that proc count.
type scalingRow struct {
	GOMAXPROCS    int     `json:"gomaxprocs"`
	BatchNsPerRow float64 `json:"batch_ns_per_row"`
	SingleNsPerOp float64 `json:"single_ns_per_op"`
	// BatchAdvantage is single_ns_per_op / batch_ns_per_row at this
	// proc count: how much cheaper a row is inside a batch.
	BatchAdvantage float64 `json:"batch_advantage"`
	// Speedup is this row's batch throughput relative to the
	// GOMAXPROCS=1 row, and PerCoreEfficiency divides it by the proc
	// count — perfect scaling is 1.0 at every row.
	Speedup           float64 `json:"speedup"`
	PerCoreEfficiency float64 `json:"per_core_efficiency"`
	// Scaling is "unmeasured" when GOMAXPROCS oversubscribes the
	// host's CPUs: the numbers are recorded for completeness but say
	// nothing about parallel scaling.
	Scaling string `json:"scaling,omitempty"`
}

// scalingResult is the whole matrix plus the HTTP-level comparison the
// batch endpoint exists for: rows/sec through one /v1/batch POST
// versus single /v1/lookup requests, sequentially on one connection.
type scalingResult struct {
	BatchSize           int          `json:"batch_size"`
	Rows                []scalingRow `json:"rows"`
	HTTPBatchRowsPerSec float64      `json:"http_batch_rows_per_sec"`
	HTTPSingleReqPerSec float64      `json:"http_single_reqs_per_sec"`
	// HTTPBatchAdvantage is batch rows/sec over single requests/sec on
	// the same connection — the factor by which batching amortises the
	// per-request HTTP overhead (acceptance bar: >= 3x at batch 256).
	HTTPBatchAdvantage float64 `json:"http_batch_advantage"`
}

// scalingHosts synthesises a deterministic pool of n hostnames shaped
// like the bench list's rules; all resolve (listed or implicit) and,
// once warmed, every one is a cache hit — the steady-state regime the
// batch path is built for.
func scalingHosts(n int) []string {
	rng := rand.New(rand.NewSource(7))
	hosts := make([]string, n)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("h%d.r%d.tld%d", i, rng.Intn(5000), rng.Intn(400))
	}
	return hosts
}

// measureScaling produces the GOMAXPROCS matrix and the HTTP batch
// advantage over a serve.Service built on l.
func measureScaling(l *psl.List, batchSize int, procs []int) *scalingResult {
	svc := serve.New(l, 0, serve.Options{})
	hosts := scalingHosts(batchSize)
	svc.LookupBatch(hosts, nil) // warm: every measured row is a cache hit

	res := &scalingResult{BatchSize: batchSize}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		batch := testing.Benchmark(func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				dst := make([]serve.Answer, 0, batchSize)
				for pb.Next() {
					dst = svc.LookupBatch(hosts, dst[:0])
				}
			})
		})
		single := testing.Benchmark(func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				k := 0
				for pb.Next() {
					_, _ = svc.Lookup(hosts[k])
					if k++; k == len(hosts) {
						k = 0
					}
				}
			})
		})
		row := scalingRow{
			GOMAXPROCS:    p,
			BatchNsPerRow: float64(batch.T.Nanoseconds()) / float64(batch.N) / float64(batchSize),
			SingleNsPerOp: float64(single.T.Nanoseconds()) / float64(single.N),
		}
		if row.BatchNsPerRow > 0 {
			row.BatchAdvantage = row.SingleNsPerOp / row.BatchNsPerRow
			if len(res.Rows) > 0 {
				row.Speedup = res.Rows[0].BatchNsPerRow / row.BatchNsPerRow
			} else {
				row.Speedup = 1
			}
			row.PerCoreEfficiency = row.Speedup / float64(p)
		}
		if p > runtime.NumCPU() {
			row.Scaling = "unmeasured"
		}
		res.Rows = append(res.Rows, row)
	}
	runtime.GOMAXPROCS(prev)

	// HTTP comparison, sequential on one warm connection: the per-row
	// cost of a 256-row binary batch POST versus one GET per lookup.
	srv := httptest.NewServer(svc)
	defer srv.Close()
	client := srv.Client()
	payload, err := serve.EncodeBatchRequest(hosts)
	if err != nil {
		panic(err) // hosts are synthesised valid UTF-8 within bounds
	}
	httpBatch := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			resp, err := client.Post(srv.URL+serve.BatchPath, serve.BatchBinaryContentType, bytes.NewReader(payload))
			if err != nil {
				b.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
	httpSingle := testing.Benchmark(func(b *testing.B) {
		k := 0
		for i := 0; i < b.N; i++ {
			resp, err := client.Get(srv.URL + serve.LookupPath + "?host=" + hosts[k])
			if err != nil {
				b.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if k++; k == len(hosts) {
				k = 0
			}
		}
	})
	if n := httpBatch.N; n > 0 && httpBatch.T > 0 {
		res.HTTPBatchRowsPerSec = float64(batchSize) * float64(n) / httpBatch.T.Seconds()
	}
	if n := httpSingle.N; n > 0 && httpSingle.T > 0 {
		res.HTTPSingleReqPerSec = float64(n) / httpSingle.T.Seconds()
	}
	if res.HTTPSingleReqPerSec > 0 {
		res.HTTPBatchAdvantage = res.HTTPBatchRowsPerSec / res.HTTPSingleReqPerSec
	}
	return res
}

// output is the whole BENCH_matchers.json document.
type output struct {
	GoVersion         string                   `json:"go_version"`
	GOMAXPROCS        int                      `json:"gomaxprocs"`
	NumCPU            int                      `json:"num_cpu"`
	Rules             int                      `json:"rules"`
	Matchers          map[string]matcherResult `json:"matchers"`
	TrieOverPackedNs  float64                  `json:"trie_over_packed_ns_ratio"`
	PackedCompileNsOp float64                  `json:"packed_compile_ns_per_op"`
	PackedBlobBytes   int                      `json:"packed_blob_bytes"`
	PackedTableBytes  int                      `json:"packed_table_bytes"`
	Sweep             *sweepResult             `json:"sweep,omitempty"`
	Dist              *distResult              `json:"dist,omitempty"`
	Scaling           *scalingResult           `json:"scaling,omitempty"`
	Notes             []string                 `json:"notes,omitempty"`
}

// measure runs one matcher over the standard name mix under
// testing.Benchmark.
func measure(m psl.Matcher) matcherResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		k := 0
		for i := 0; i < b.N; i++ {
			m.Match(benchNames[k])
			if k++; k == len(benchNames) {
				k = 0
			}
		}
	})
	return matcherResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// sweepSeqs spreads n version sequences evenly over the history, like
// bench_test.go's benchSweepSeqs.
func sweepSeqs(e *experiments.Env, n int) []int {
	seqs := make([]int, n)
	for i := range seqs {
		seqs[i] = i * (e.H.Len() - 1) / (n - 1)
	}
	return seqs
}

// measureSweep times the Figure 5/6/7 recomputation sweep serially and
// across GOMAXPROCS workers, over a warmed compile cache.
func measureSweep(scale float64, versions int) sweepResult {
	e := experiments.New(history.DefaultSeed, scale)
	seqs := sweepSeqs(e, versions)
	e.Sweep(seqs, 1) // warm the compile cache; both runs time matching only
	serial := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Sweep(seqs, 1)
		}
	})
	parallel := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Sweep(seqs, 0)
		}
	})
	s := sweepResult{
		Versions:        versions,
		Workers:         runtime.GOMAXPROCS(0),
		SerialNsPerOp:   float64(serial.T.Nanoseconds()) / float64(serial.N),
		ParallelNsPerOp: float64(parallel.T.Nanoseconds()) / float64(parallel.N),
	}
	if s.ParallelNsPerOp > 0 {
		s.Speedup = s.SerialNsPerOp / s.ParallelNsPerOp
		s.PerCoreEfficiency = s.Speedup / float64(s.Workers)
	}
	if s.Workers <= 1 || s.Workers > runtime.NumCPU() {
		s.Scaling = "unmeasured"
	}
	return s
}

// benchConfig selects which sections a run collects.
type benchConfig struct {
	rules     int
	scale     float64
	versions  int
	batchSize int
	withSweep bool
	quick     bool // matrix at GOMAXPROCS=1 only, skip sweep and dist
}

// collect produces the full document.
func collect(cfg benchConfig) output {
	rules, scale, versions := cfg.rules, cfg.scale, cfg.versions
	withSweep := cfg.withSweep && !cfg.quick
	l := benchRules(rules)
	out := output{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Rules:      l.Len(),
		Matchers:   make(map[string]matcherResult, 5),
	}
	out.Matchers["map"] = measure(psl.NewMapMatcher(l))
	out.Matchers["trie"] = measure(psl.NewTrieMatcher(l))
	out.Matchers["sorted"] = measure(psl.NewSortedMatcher(l))
	out.Matchers["linear"] = measure(psl.NewLinearMatcher(l))
	pm := psl.NewPackedMatcher(l)
	out.Matchers["packed"] = measure(pm)
	if p := out.Matchers["packed"].NsPerOp; p > 0 {
		out.TrieOverPackedNs = out.Matchers["trie"].NsPerOp / p
	}
	compile := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			psl.NewPackedMatcher(l)
		}
	})
	out.PackedCompileNsOp = float64(compile.T.Nanoseconds()) / float64(compile.N)
	out.PackedBlobBytes = len(pm.Marshal())
	out.PackedTableBytes = pm.SizeBytes()
	if !cfg.quick {
		ds := dist.ComputeChainStats(history.Generate(history.Config{Seed: history.DefaultSeed}))
		out.Dist = &distResult{ChainStats: ds, FullOverPatchRatio: ds.Ratio()}
	}
	if withSweep {
		s := measureSweep(scale, versions)
		out.Sweep = &s
		if out.GOMAXPROCS < 4 {
			out.Notes = append(out.Notes,
				fmt.Sprintf("parallel-sweep speedup measured at GOMAXPROCS=%d; the >=2x acceptance bar applies at GOMAXPROCS>=4", out.GOMAXPROCS))
		}
		if out.GOMAXPROCS > out.NumCPU {
			out.Notes = append(out.Notes,
				fmt.Sprintf("GOMAXPROCS=%d oversubscribes the host's %d CPU(s); parallel speedup ~1x is expected", out.GOMAXPROCS, out.NumCPU))
		}
		if s.Scaling == "unmeasured" {
			out.Notes = append(out.Notes,
				fmt.Sprintf("sweep ran with %d worker(s) on %d CPU(s): speedup %.2f is not a scaling measurement; see the scaling matrix", s.Workers, out.NumCPU, s.Speedup))
		}
	}
	procs := []int{1, 2, 4, 8}
	if cfg.quick {
		procs = []int{1}
	}
	out.Scaling = measureScaling(l, cfg.batchSize, procs)
	for _, row := range out.Scaling.Rows {
		if row.Scaling == "unmeasured" {
			out.Notes = append(out.Notes,
				fmt.Sprintf("scaling row GOMAXPROCS=%d oversubscribes the host's %d CPU(s) and is marked unmeasured", row.GOMAXPROCS, out.NumCPU))
		}
	}
	return out
}

// check enforces the CI gates over a collected document, returning a
// non-nil error describing the first violated bar.
func check(doc output) error {
	sc := doc.Scaling
	if sc == nil || len(sc.Rows) == 0 {
		return fmt.Errorf("no scaling section to check")
	}
	// Both sides are dominated by the same cache-hit lookup, so the
	// margin between them is small; the 15% tolerance absorbs timer
	// noise while still tripping on any real per-row regression (one
	// allocation or per-row counter costs far more than that).
	r0 := sc.Rows[0]
	if r0.BatchNsPerRow > r0.SingleNsPerOp*1.15 {
		return fmt.Errorf("batch path costs %.1f ns/row, more than a cached single lookup (%.1f ns/op)",
			r0.BatchNsPerRow, r0.SingleNsPerOp)
	}
	if sc.HTTPBatchAdvantage < 3 {
		return fmt.Errorf("HTTP batch advantage %.2fx is below the 3x bar (batch %.0f rows/s vs %.0f single reqs/s)",
			sc.HTTPBatchAdvantage, sc.HTTPBatchRowsPerSec, sc.HTTPSingleReqPerSec)
	}
	return nil
}

func main() {
	outPath := flag.String("out", "BENCH_matchers.json", "output JSON path ('-' for stdout)")
	rules := flag.Int("rules", 9000, "benchmark list size")
	scale := flag.Float64("scale", 0.2, "snapshot scale for the sweep benchmark")
	versions := flag.Int("versions", 32, "versions per sweep")
	batchSize := flag.Int("batch-size", 256, "rows per batch in the scaling matrix")
	noSweep := flag.Bool("no-sweep", false, "skip the per-version sweep benchmark")
	quick := flag.Bool("quick", false, "reduced run for CI: scaling matrix at GOMAXPROCS=1 only, no sweep or dist stats")
	doCheck := flag.Bool("check", false, "exit nonzero when a perf acceptance bar is violated")
	flag.Parse()
	if *batchSize < 1 {
		fmt.Fprintln(os.Stderr, "pslbench: -batch-size must be positive")
		os.Exit(2)
	}

	doc := collect(benchConfig{
		rules:     *rules,
		scale:     *scale,
		versions:  *versions,
		batchSize: *batchSize,
		withSweep: !*noSweep,
		quick:     *quick,
	})
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pslbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *outPath == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pslbench:", err)
			os.Exit(1)
		}
		r0 := doc.Scaling.Rows[0]
		fmt.Printf("wrote %s (packed %.1f ns/op, batch %.1f ns/row vs single %.1f ns/op, http batch %.1fx)\n",
			*outPath, doc.Matchers["packed"].NsPerOp, r0.BatchNsPerRow, r0.SingleNsPerOp, doc.Scaling.HTTPBatchAdvantage)
	}
	if *doCheck {
		if err := check(doc); err != nil {
			fmt.Fprintln(os.Stderr, "pslbench: check failed:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "pslbench: perf bars hold")
	}
}
