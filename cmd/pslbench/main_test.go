package main

import (
	"encoding/json"
	"testing"
)

// TestBenchRulesShape pins the benchmark list to the same shape the
// internal/psl ablations use, so pslbench numbers stay comparable.
func TestBenchRulesShape(t *testing.T) {
	l := benchRules(9000)
	// NewList dedupes the random generator's collisions, so the exact
	// count sits just under the requested size.
	if l.Len() < 8900 || l.Len() > 9000 {
		t.Fatalf("list has %d rules, want ~9000", l.Len())
	}
	for _, name := range []string{"com", "co.uk", "uk"} {
		if got := l.Matcher().Match("probe." + name); got.Implicit {
			t.Fatalf("anchor rule %q missing from benchmark list", name)
		}
	}
}

// TestOutputEncodes checks the JSON document shape without running the
// (slow) measurements.
func TestOutputEncodes(t *testing.T) {
	doc := output{
		GoVersion:  "go0.0",
		GOMAXPROCS: 1,
		Rules:      3,
		Matchers:   map[string]matcherResult{"packed": {NsPerOp: 17.5}},
		Sweep:      &sweepResult{Versions: 32, Workers: 1, SerialNsPerOp: 2, ParallelNsPerOp: 1, Speedup: 2},
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back output
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Matchers["packed"].NsPerOp != 17.5 || back.Sweep.Speedup != 2 {
		t.Fatalf("round-trip mangled the document: %+v", back)
	}
}
