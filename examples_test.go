package repro

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// exampleExpectations map each example to a phrase its output must
// contain, so the runnable documentation cannot silently rot.
var exampleExpectations = map[string]string{
	"quickstart":      "supercookie",
	"passwordmanager": "CREDENTIALS OFFERED TO ANOTHER TENANT",
	"cookiejar":       "CROSS-TENANT LEAK",
	"updater":         "tenants MERGED (harmful)",
	"forensics":       "classified: fixed/production",
	"dmarc":           "policy at myshopify.com",
	"certissuance":    "ISSUE   *.myshopify.com",
	"dbound":          "SameSite(alice.newplatform.com, bob.newplatform.com) = false",
	"crawl":           "crawled",
}

// TestExamplesRun executes every example binary and checks its output
// tells the story it documents. Skipped under -short (each run pays a
// compile).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run full binaries; skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(exampleExpectations) {
		t.Errorf("examples/ has %d entries, expectations cover %d", len(entries), len(exampleExpectations))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		want, ok := exampleExpectations[name]
		if !ok {
			t.Errorf("no expectation registered for example %q", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Errorf("example %s output missing %q:\n%s", name, want, out)
			}
		})
	}
}
